#include "src/gns/multimaster.h"

#include <algorithm>
#include <utility>

#include "src/common/strings.h"
#include "src/fault/plan.h"
#include "src/obs/metrics.h"

namespace griddles::gns {

namespace {
constexpr std::uint16_t method_id(PeerMethod m) {
  return static_cast<std::uint16_t>(m);
}

/// Handles cached once; see src/obs/metrics.h naming scheme.
struct MultiMasterMetrics {
  obs::Counter& replicate_failed;  // co-owner pushes lost (AE repairs)
  obs::Counter& write_forwarded;   // puts relayed to the actual owner
  obs::Counter& repaired;          // entries fixed by anti-entropy

  static MultiMasterMetrics& get() {
    auto& registry = obs::MetricsRegistry::global();
    static MultiMasterMetrics metrics{
        registry.counter("gns.replicate.failed"),
        registry.counter("gns.write.forwarded"),
        registry.counter("gns.antientropy.repaired"),
    };
    return metrics;
  }
};
}  // namespace

std::string sync_pair_key(std::string_view a, std::string_view b) {
  if (b < a) std::swap(a, b);
  return strings::cat(a, "-", b);
}

// ---------------------------------------------------------------------------
// PeerClient

PeerClient::PeerClient(net::Transport& transport, net::Endpoint server,
                       net::WireFormat format)
    : rpc_(transport, std::move(server), format) {}

Result<std::uint64_t> PeerClient::put(const MappingRule& rule,
                                      bool tombstone, bool allow_forward) {
  xdr::Encoder enc;
  encode_rule(enc, rule);
  enc.put_bool(tombstone);
  enc.put_bool(allow_forward);
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc_.call(method_id(PeerMethod::kPut), enc.buffer()));
  xdr::Decoder dec(reply);
  return dec.u64();
}

Result<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
PeerClient::digests() {
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc_.call(method_id(PeerMethod::kDigests), {}));
  xdr::Decoder dec(reply);
  using Row = std::pair<std::uint32_t, std::uint64_t>;
  return dec.vector<Row>([](xdr::Decoder& d) -> Result<Row> {
    Row row;
    GL_ASSIGN_OR_RETURN(row.first, d.u32());
    GL_ASSIGN_OR_RETURN(row.second, d.u64());
    return row;
  });
}

Result<std::vector<VersionedRule>> PeerClient::exchange(
    std::uint32_t shard, const std::vector<VersionedRule>& mine) {
  xdr::Encoder enc;
  enc.put_u32(shard);
  enc.put_vector(mine, [](xdr::Encoder& e, const VersionedRule& entry) {
    encode_versioned(e, entry);
  });
  GL_ASSIGN_OR_RETURN(
      const Bytes reply,
      rpc_.call(method_id(PeerMethod::kExchange), enc.buffer()));
  xdr::Decoder dec(reply);
  return dec.vector<VersionedRule>(
      [](xdr::Decoder& d) { return decode_versioned(d); });
}

Status PeerClient::replicate(std::uint32_t shard,
                             const VersionedRule& entry) {
  xdr::Encoder enc;
  enc.put_u32(shard);
  encode_versioned(enc, entry);
  GL_ASSIGN_OR_RETURN(
      const Bytes reply,
      rpc_.call(method_id(PeerMethod::kReplicate), enc.buffer()));
  (void)reply;
  return Status::ok();
}

Status PeerClient::install_map(const ShardMap& map) {
  xdr::Encoder enc;
  map.encode(enc);
  GL_ASSIGN_OR_RETURN(
      const Bytes reply,
      rpc_.call(method_id(PeerMethod::kInstallMap), enc.buffer()));
  (void)reply;
  return Status::ok();
}

Result<std::pair<ShardMap, std::vector<ReplicaAddress>>>
PeerClient::get_map() {
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc_.call(method_id(PeerMethod::kGetMap), {}));
  xdr::Decoder dec(reply);
  std::pair<ShardMap, std::vector<ReplicaAddress>> result;
  GL_ASSIGN_OR_RETURN(result.first, ShardMap::decode(dec));
  GL_ASSIGN_OR_RETURN(
      result.second,
      dec.vector<ReplicaAddress>(
          [](xdr::Decoder& d) -> Result<ReplicaAddress> {
            ReplicaAddress address;
            GL_ASSIGN_OR_RETURN(address.name, d.string());
            GL_ASSIGN_OR_RETURN(const std::string text, d.string());
            GL_ASSIGN_OR_RETURN(address.endpoint, net::Endpoint::parse(text));
            return address;
          }));
  return result;
}

// ---------------------------------------------------------------------------
// ReplicaNode

ReplicaNode::ReplicaNode(std::string name, net::Transport& transport,
                         net::Endpoint bind, net::WireFormat format)
    : name_(std::move(name)),
      transport_(transport),
      format_(format),
      store_(name_),
      rpc_(transport, std::move(bind), format) {
  register_handlers();
}

void ReplicaNode::set_map(ShardMap map) {
  MutexLock lock(mu_);
  if (map.epoch < map_.epoch) return;
  if (map.epoch == map_.epoch && map == map_) return;
  map_ = std::move(map);
  bump_version();
}

ShardMap ReplicaNode::map() const {
  MutexLock lock(mu_);
  return map_;
}

void ReplicaNode::set_peer(const std::string& peer, net::Endpoint endpoint) {
  MutexLock lock(mu_);
  Peer& entry = peers_[peer];
  if (entry.endpoint != endpoint) entry.client.reset();
  entry.endpoint = std::move(endpoint);
}

void ReplicaNode::remove_peer(const std::string& peer) {
  MutexLock lock(mu_);
  peers_.erase(peer);
}

std::vector<ReplicaAddress> ReplicaNode::roster() const {
  std::vector<ReplicaAddress> result;
  result.push_back({name_, rpc_.endpoint()});
  MutexLock lock(mu_);
  result.reserve(peers_.size() + 1);
  for (const auto& [peer, entry] : peers_) {
    result.push_back({peer, entry.endpoint});
  }
  return result;
}

std::shared_ptr<PeerClient> ReplicaNode::peer_client(
    const std::string& peer) {
  MutexLock lock(mu_);
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return nullptr;
  if (it->second.client == nullptr) {
    it->second.client = std::make_shared<PeerClient>(
        transport_, it->second.endpoint, format_);
  }
  return it->second.client;
}

Status ReplicaNode::consult_sync_fault(const std::string& peer) {
  fault::Plan* plan = fault::armed();
  if (plan == nullptr) return Status::ok();
  const fault::Decision severed =
      plan->consult(fault::Site::kGnsSync, sync_pair_key(name_, peer));
  if (severed.action == fault::Decision::Action::kSever ||
      severed.action == fault::Decision::Action::kFail) {
    return unavailable(
        strings::cat("injected partition: gns ", name_, "-", peer));
  }
  if (severed.action == fault::Decision::Action::kDelay) {
    fault::sleep_for_model(severed.delay);
  }
  // A die@gns replica neither sends nor receives sync: it both misses
  // writes and cannot pull repairs until the plan is disarmed.
  for (const std::string* end : {&name_, &peer}) {
    const fault::Decision verdict =
        plan->consult(fault::Site::kGns, *end);
    if (verdict.action == fault::Decision::Action::kKill ||
        verdict.action == fault::Decision::Action::kFail) {
      return unavailable(
          strings::cat("injected fault: gns ", *end, " is down"));
    }
    if (verdict.action == fault::Decision::Action::kDelay) {
      fault::sleep_for_model(verdict.delay);
    }
  }
  return Status::ok();
}

ReplicaStore::Applied ReplicaNode::merge_entry(std::uint32_t shard,
                                               const VersionedRule& entry,
                                               bool count_repair) {
  const ReplicaStore::Applied applied = store_.apply(shard, entry);
  if (applied == ReplicaStore::Applied::kNew ||
      applied == ReplicaStore::Applied::kConflict) {
    bump_version();
    if (count_repair) MultiMasterMetrics::get().repaired.add();
  }
  return applied;
}

Result<std::uint64_t> ReplicaNode::put(MappingRule rule, bool tombstone,
                                       bool allow_forward) {
  const ShardMap map = this->map();
  const std::uint32_t shard =
      map.shard_of_rule(rule.host_pattern, rule.path_pattern);
  if (map.owns(name_, shard)) {
    const VersionedRule entry =
        store_.coordinate(shard, std::move(rule), tombstone);
    bump_version();
    for (const std::string& owner : map.owners(shard)) {
      if (owner == name_) continue;
      if (const Status st = consult_sync_fault(owner); !st.is_ok()) {
        MultiMasterMetrics::get().replicate_failed.add();
        continue;
      }
      const std::shared_ptr<PeerClient> client = peer_client(owner);
      if (client == nullptr) {
        MultiMasterMetrics::get().replicate_failed.add();
        continue;
      }
      if (const Status st = client->replicate(shard, entry); !st.is_ok()) {
        MultiMasterMetrics::get().replicate_failed.add();
      }
    }
    return map.epoch;
  }
  if (!allow_forward) {
    return failed_precondition(strings::cat(
        "gns: ", name_, " does not own the shard of (", rule.host_pattern,
        ", ", rule.path_pattern, ") at epoch ", map.epoch));
  }
  // Stale-map client (or handoff window): relay to a current owner. The
  // forwarded hop sends allow_forward=false so a map disagreement
  // between two nodes cannot ping-pong.
  Status last = unavailable("gns: no owner reachable for shard");
  for (const std::string& owner : map.owners(shard)) {
    if (owner == name_) continue;
    if (Status st = consult_sync_fault(owner); !st.is_ok()) {
      last = std::move(st);
      continue;
    }
    const std::shared_ptr<PeerClient> client = peer_client(owner);
    if (client == nullptr) {
      last = unavailable(strings::cat("gns: unknown peer ", owner));
      continue;
    }
    Result<std::uint64_t> forwarded = client->put(rule, tombstone, false);
    if (forwarded.is_ok()) {
      MultiMasterMetrics::get().write_forwarded.add();
      return forwarded;
    }
    last = forwarded.status();
  }
  return last;
}

Result<std::uint64_t> ReplicaNode::sync_with(const std::string& peer) {
  GL_RETURN_IF_ERROR(consult_sync_fault(peer));
  const std::shared_ptr<PeerClient> client = peer_client(peer);
  if (client == nullptr) {
    return not_found(strings::cat("gns: unknown peer ", peer));
  }
  GL_ASSIGN_OR_RETURN(const auto peer_digests, client->digests());
  std::map<std::uint32_t, std::uint64_t> theirs(peer_digests.begin(),
                                                peer_digests.end());
  const ShardMap map = this->map();
  std::uint64_t repaired = 0;
  for (const std::uint32_t shard : map.shards_of(name_)) {
    if (!map.owns(peer, shard)) continue;
    const auto it = theirs.find(shard);
    const std::uint64_t their_digest = it == theirs.end() ? 0 : it->second;
    if (store_.digest(shard) == their_digest) continue;
    GL_ASSIGN_OR_RETURN(
        const std::vector<VersionedRule> entries,
        client->exchange(shard, store_.entries(shard)));
    for (const VersionedRule& entry : entries) {
      const ReplicaStore::Applied applied =
          merge_entry(shard, entry, /*count_repair=*/true);
      if (applied == ReplicaStore::Applied::kNew ||
          applied == ReplicaStore::Applied::kConflict) {
        ++repaired;
      }
    }
  }
  return repaired;
}

Status ReplicaNode::sync_shard_from(const std::string& peer,
                                    std::uint32_t shard) {
  GL_RETURN_IF_ERROR(consult_sync_fault(peer));
  const std::shared_ptr<PeerClient> client = peer_client(peer);
  if (client == nullptr) {
    return not_found(strings::cat("gns: unknown peer ", peer));
  }
  GL_ASSIGN_OR_RETURN(const std::vector<VersionedRule> entries,
                      client->exchange(shard, store_.entries(shard)));
  for (const VersionedRule& entry : entries) {
    merge_entry(shard, entry, /*count_repair=*/false);
  }
  return Status::ok();
}

void ReplicaNode::schedule_drop(std::uint32_t shard,
                                WallClock::time_point after) {
  MutexLock lock(mu_);
  pending_drops_.push_back({shard, after});
}

void ReplicaNode::gc_dropped_shards() {
  std::vector<std::uint32_t> due;
  {
    MutexLock lock(mu_);
    const WallClock::time_point now = WallClock::now();
    auto keep = pending_drops_.begin();
    for (const PendingDrop& drop : pending_drops_) {
      if (drop.after <= now) {
        due.push_back(drop.shard);
      } else {
        *keep++ = drop;
      }
    }
    pending_drops_.erase(keep, pending_drops_.end());
  }
  for (const std::uint32_t shard : due) store_.drop_shard(shard);
  if (!due.empty()) bump_version();
}

void ReplicaNode::register_handlers() {
  // Same frame as gns::Method::kLookup so GnsClient works unchanged.
  rpc_.register_method(
      method_id(PeerMethod::kLookup),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string host, dec.string());
        GL_ASSIGN_OR_RETURN(const std::string path, dec.string());
        const std::uint32_t shard = map().shard_of(host, path);
        const std::optional<FileMapping> mapping =
            store_.lookup(shard, host, path);
        xdr::Encoder enc;
        enc.put_u64(version());
        enc.put_bool(mapping.has_value());
        if (mapping) encode_mapping(enc, *mapping);
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(PeerMethod::kPut),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(MappingRule rule, decode_rule(dec));
        GL_ASSIGN_OR_RETURN(const bool tombstone, dec.boolean());
        GL_ASSIGN_OR_RETURN(const bool allow_forward, dec.boolean());
        GL_ASSIGN_OR_RETURN(
            const std::uint64_t epoch,
            put(std::move(rule), tombstone, allow_forward));
        xdr::Encoder enc;
        enc.put_u64(epoch);
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(PeerMethod::kReplicate),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::uint32_t shard, dec.u32());
        GL_ASSIGN_OR_RETURN(const VersionedRule entry,
                            decode_versioned(dec));
        const ReplicaStore::Applied applied =
            merge_entry(shard, entry, /*count_repair=*/false);
        xdr::Encoder enc;
        enc.put_u8(static_cast<std::uint8_t>(applied));
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(PeerMethod::kDigests),
      [this](ByteSpan, const net::RpcContext&) -> Result<Bytes> {
        const ShardMap map = this->map();
        const std::vector<std::uint32_t> shards = map.shards_of(name_);
        xdr::Encoder enc;
        enc.put_u32(static_cast<std::uint32_t>(shards.size()));
        for (const std::uint32_t shard : shards) {
          enc.put_u32(shard);
          enc.put_u64(store_.digest(shard));
        }
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(PeerMethod::kExchange),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::uint32_t shard, dec.u32());
        GL_ASSIGN_OR_RETURN(
            const std::vector<VersionedRule> entries,
            dec.vector<VersionedRule>(
                [](xdr::Decoder& d) { return decode_versioned(d); }));
        // Snapshot before merging so the caller receives exactly what
        // this side had — both then converge by applying the other's
        // pre-exchange state.
        const std::vector<VersionedRule> mine = store_.entries(shard);
        for (const VersionedRule& entry : entries) {
          merge_entry(shard, entry, /*count_repair=*/true);
        }
        xdr::Encoder enc;
        enc.put_vector(mine,
                       [](xdr::Encoder& e, const VersionedRule& entry) {
                         encode_versioned(e, entry);
                       });
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(PeerMethod::kInstallMap),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(ShardMap map, ShardMap::decode(dec));
        set_map(std::move(map));
        return Bytes{};
      });
  rpc_.register_method(
      method_id(PeerMethod::kGetMap),
      [this](ByteSpan, const net::RpcContext&) -> Result<Bytes> {
        xdr::Encoder enc;
        map().encode(enc);
        enc.put_vector(roster(),
                       [](xdr::Encoder& e, const ReplicaAddress& address) {
                         e.put_string(address.name);
                         e.put_string(address.endpoint.to_string());
                       });
        return std::move(enc).take();
      });
}

}  // namespace griddles::gns
