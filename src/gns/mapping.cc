#include "src/gns/mapping.h"

#include "src/common/strings.h"

namespace griddles::gns {

std::string_view io_mode_name(IoMode mode) noexcept {
  switch (mode) {
    case IoMode::kLocal: return "local";
    case IoMode::kRemoteCopy: return "remote_copy";
    case IoMode::kRemoteProxy: return "remote_proxy";
    case IoMode::kReplicated: return "replicated";
    case IoMode::kGridBuffer: return "gridbuffer";
    case IoMode::kAuto: return "auto";
  }
  return "local";
}

Result<IoMode> io_mode_from_name(std::string_view name) {
  if (name == "local") return IoMode::kLocal;
  if (name == "remote_copy") return IoMode::kRemoteCopy;
  if (name == "remote_proxy") return IoMode::kRemoteProxy;
  if (name == "replicated") return IoMode::kReplicated;
  if (name == "gridbuffer") return IoMode::kGridBuffer;
  if (name == "auto") return IoMode::kAuto;
  return invalid_argument(strings::cat("unknown io mode '", name, "'"));
}

bool MappingRule::matches(std::string_view host, std::string_view path) const {
  return strings::glob_match(host_pattern, host) &&
         strings::glob_match(path_pattern, path);
}

void encode_mapping(xdr::Encoder& enc, const FileMapping& mapping) {
  enc.put_u8(static_cast<std::uint8_t>(mapping.mode));
  enc.put_string(mapping.local_path);
  enc.put_string(mapping.remote_endpoint);
  enc.put_string(mapping.remote_path);
  enc.put_string(mapping.logical_name);
  enc.put_string(mapping.catalog_endpoint);
  enc.put_string(mapping.channel);
  enc.put_string(mapping.buffer_endpoint);
  enc.put_bool(mapping.cache_enabled);
  enc.put_u32(mapping.block_size);
  enc.put_u32(mapping.reader_count);
  enc.put_string(mapping.record_schema);
  enc.put_f64(mapping.access_fraction);
  enc.put_bool(mapping.tail);
}

Result<FileMapping> decode_mapping(xdr::Decoder& dec) {
  FileMapping mapping;
  GL_ASSIGN_OR_RETURN(const std::uint8_t mode, dec.u8());
  if (mode > static_cast<std::uint8_t>(IoMode::kAuto)) {
    return invalid_argument("decoded mapping has bad io mode");
  }
  mapping.mode = static_cast<IoMode>(mode);
  GL_ASSIGN_OR_RETURN(mapping.local_path, dec.string());
  GL_ASSIGN_OR_RETURN(mapping.remote_endpoint, dec.string());
  GL_ASSIGN_OR_RETURN(mapping.remote_path, dec.string());
  GL_ASSIGN_OR_RETURN(mapping.logical_name, dec.string());
  GL_ASSIGN_OR_RETURN(mapping.catalog_endpoint, dec.string());
  GL_ASSIGN_OR_RETURN(mapping.channel, dec.string());
  GL_ASSIGN_OR_RETURN(mapping.buffer_endpoint, dec.string());
  GL_ASSIGN_OR_RETURN(mapping.cache_enabled, dec.boolean());
  GL_ASSIGN_OR_RETURN(mapping.block_size, dec.u32());
  GL_ASSIGN_OR_RETURN(mapping.reader_count, dec.u32());
  GL_ASSIGN_OR_RETURN(mapping.record_schema, dec.string());
  GL_ASSIGN_OR_RETURN(mapping.access_fraction, dec.f64());
  GL_ASSIGN_OR_RETURN(mapping.tail, dec.boolean());
  return mapping;
}

void encode_rule(xdr::Encoder& enc, const MappingRule& rule) {
  enc.put_string(rule.host_pattern);
  enc.put_string(rule.path_pattern);
  encode_mapping(enc, rule.mapping);
}

Result<MappingRule> decode_rule(xdr::Decoder& dec) {
  MappingRule rule;
  GL_ASSIGN_OR_RETURN(rule.host_pattern, dec.string());
  GL_ASSIGN_OR_RETURN(rule.path_pattern, dec.string());
  GL_ASSIGN_OR_RETURN(rule.mapping, decode_mapping(dec));
  return rule;
}

Result<std::vector<MappingRule>> rules_from_config(const Config& config) {
  std::vector<MappingRule> rules;
  for (const std::string& section : config.sections()) {
    if (!strings::starts_with(section, "mapping:")) continue;
    auto key = [&](std::string_view name) {
      return strings::cat(section, ".", name);
    };
    MappingRule rule;
    GL_ASSIGN_OR_RETURN(rule.host_pattern, config.get_required(key("host")));
    GL_ASSIGN_OR_RETURN(rule.path_pattern, config.get_required(key("path")));
    GL_ASSIGN_OR_RETURN(const std::string mode_name,
                        config.get_required(key("mode")));
    GL_ASSIGN_OR_RETURN(rule.mapping.mode, io_mode_from_name(mode_name));
    rule.mapping.local_path = config.get_or(key("local_path"), "");
    rule.mapping.remote_endpoint = config.get_or(key("remote_endpoint"), "");
    rule.mapping.remote_path = config.get_or(key("remote_path"), "");
    rule.mapping.logical_name = config.get_or(key("logical_name"), "");
    rule.mapping.catalog_endpoint = config.get_or(key("catalog_endpoint"), "");
    rule.mapping.channel = config.get_or(key("channel"), "");
    rule.mapping.buffer_endpoint = config.get_or(key("buffer_endpoint"), "");
    rule.mapping.cache_enabled = config.get_bool_or(key("cache"), true);
    rule.mapping.block_size = static_cast<std::uint32_t>(
        config.get_int_or(key("block_size"), 4096));
    rule.mapping.reader_count = static_cast<std::uint32_t>(
        config.get_int_or(key("readers"), 1));
    rule.mapping.record_schema = config.get_or(key("record_schema"), "");
    rule.mapping.access_fraction =
        config.get_double_or(key("access_fraction"), 1.0);
    rule.mapping.tail = config.get_bool_or(key("tail"), false);
    rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace griddles::gns
