// GnsCluster: the multi-master replica set supervisor.
//
// Owns the ReplicaNodes of one deployment and drives the three control
// loops the nodes themselves stay ignorant of:
//
//   - anti-entropy: every `ae_interval` (or on a manual tick) each
//     replica pair exchanges per-shard digests and swaps entries for the
//     divergent shards, so a partitioned or die@gns-dead replica
//     converges after the fault heals (gns.antientropy.{rounds,repaired}
//     make the repair observable);
//   - writes: add_rule/remove_rule coordinate on the shard's first
//     healthy owner (dead owners are skipped by the fault plan exactly
//     like the lookup walk skips them), which replicates onward;
//   - lease-safe reconfiguration: add_replica/remove_replica on a LIVE
//     cluster prime the new owners' shards BEFORE the higher-epoch map
//     is installed, and keep the old owner serving (and its data
//     undropped) for `handoff_lease`, so clients holding either map
//     epoch never observe a missing shard.
//
// Removal = tombstone write: remove_rule versions a tombstone through
// the same coordinate/replicate/anti-entropy path as any write, so
// deletions replicate instead of resurrecting.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/gns/multimaster.h"

namespace griddles::gns {

class GnsCluster {
 public:
  struct Options {
    std::uint32_t num_shards = 8;
    /// Owners per shard; 0 = every replica owns every shard.
    std::uint32_t replication = 0;
    net::WireFormat format = net::WireFormat::kBinary;
    /// Background anti-entropy period; zero means manual ticks only
    /// (tests drive run_antientropy_round() themselves).
    std::chrono::milliseconds ae_interval{100};
    /// How long an old owner keeps serving a handed-off shard (covers
    /// clients still routing by the previous map epoch).
    std::chrono::milliseconds handoff_lease{2000};
  };

  GnsCluster(net::Transport& transport, Options options);
  ~GnsCluster();

  GnsCluster(const GnsCluster&) = delete;
  GnsCluster& operator=(const GnsCluster&) = delete;

  /// Adds a member. Before start() this only extends the membership; on
  /// a live cluster it starts the node, primes every shard the new map
  /// assigns it, then installs the new epoch everywhere.
  Status add_replica(std::string name, net::Endpoint bind);

  /// Removes a member with a lease-safe handoff: surviving owners sync
  /// its shards first, the new epoch installs, and the node keeps
  /// serving stale-map readers until `handoff_lease` expires (it is
  /// reaped on a later anti-entropy tick or at stop()).
  Status remove_replica(const std::string& name);

  /// Starts every node and the anti-entropy loop.
  Status start();
  void stop();

  ShardMap map() const;
  std::vector<ReplicaAddress> endpoints() const;
  std::size_t replica_count() const;
  std::shared_ptr<ReplicaNode> node(std::string_view name) const;

  /// Coordinates a write/removal on the shard's first healthy owner.
  Status add_rule(MappingRule rule);
  Status remove_rule(const std::string& host_pattern,
                     const std::string& path_pattern);

  /// One full anti-entropy round over all replica pairs; returns the
  /// number of repaired entries. Also reaps retired nodes and runs
  /// post-handoff shard GC.
  std::uint64_t run_antientropy_round();

  /// True when every replica pair agrees on the digest of every shard
  /// they co-own (checked in-process, unaffected by armed faults).
  bool converged() const;

  /// Runs rounds until converged (at most `max_rounds`); fails typed
  /// when still divergent — e.g. a partition is still armed.
  Status converge(int max_rounds);

 private:
  struct Retiring {
    std::shared_ptr<ReplicaNode> node;
    WallClock::time_point until{};
  };

  void ae_loop();
  void reap_retired(bool force);
  Status put(MappingRule rule, bool tombstone);
  std::vector<std::shared_ptr<ReplicaNode>> snapshot() const;
  /// Installs `map` on every node, retiring included (direct calls; map
  /// distribution is control-plane, not subject to data-path faults).
  void install(const ShardMap& map);

  net::Transport& transport_;
  const Options options_;

  mutable Mutex mu_;
  ShardMap map_ GUARDED_BY(mu_);
  std::vector<std::shared_ptr<ReplicaNode>> nodes_ GUARDED_BY(mu_);
  std::vector<Retiring> retiring_ GUARDED_BY(mu_);
  bool started_ GUARDED_BY(mu_) = false;

  Mutex ae_mu_;
  CondVar ae_cv_;
  bool ae_stop_ GUARDED_BY(ae_mu_) = false;
  std::thread ae_thread_;
};

}  // namespace griddles::gns
