// Per-replica versioned rule store for the multi-master GNS.
//
// Unlike gns::Database (one shared rule list, insertion-ordered), every
// multi-master replica owns a ReplicaStore: shard buckets of
// (host_pattern, path_pattern) -> VersionedRule entries, where each
// entry carries a vector clock, the coordinating replica's id, and a
// Lamport priority used for rule precedence ("latest write wins" across
// replicas without a shared insertion order).
//
// apply() is the single merge point for replicated and repaired
// entries. Its conflict rule is a semilattice join: when two versions
// compare concurrent, the surviving value is the one with the higher
// (priority, writer-id) pair, the surviving clock is the pointwise max
// of both, and the surviving priority is the max — so two replicas
// resolving the same pair independently, in either order, converge to
// byte-identical state. Every such resolution bumps gns.conflict.* and
// emits a kConflict trace span.
//
// Removals write tombstones (versioned like any write) so anti-entropy
// can replicate deletion instead of resurrecting removed rules.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/gns/mapping.h"
#include "src/gns/vclock.h"

namespace griddles::gns {

/// One versioned namespace entry, keyed by its rule's pattern pair.
struct VersionedRule {
  MappingRule rule;
  bool tombstone = false;
  VClock version;
  std::string writer;          // replica that coordinated the write
  std::uint64_t priority = 0;  // Lamport height: rule precedence

  friend bool operator==(const VersionedRule&,
                         const VersionedRule&) = default;
};

void encode_versioned(xdr::Encoder& enc, const VersionedRule& entry);
Result<VersionedRule> decode_versioned(xdr::Decoder& dec);

class ReplicaStore {
 public:
  explicit ReplicaStore(std::string replica_id)
      : replica_id_(std::move(replica_id)) {}

  const std::string& replica_id() const noexcept { return replica_id_; }

  /// What apply() did with an incoming entry.
  enum class Applied : std::uint8_t {
    kNew,       // incoming dominated (or key was absent): stored
    kEqual,     // identical version: no-op
    kStale,     // local version dominates: dropped
    kConflict,  // concurrent: deterministically joined and stored
  };

  /// Coordinates a local write on this replica: joins the stored
  /// version, bumps this replica's counter, assigns the next Lamport
  /// priority, stores, and returns the entry to replicate to peers.
  VersionedRule coordinate(std::uint32_t shard, MappingRule rule,
                           bool tombstone);

  /// Merges an already-versioned entry (replication or anti-entropy).
  Applied apply(std::uint32_t shard, const VersionedRule& entry);

  /// Resolves (host, path) against `shard`'s entries plus the broadcast
  /// glob rules in kGlobalShard. Highest (priority, writer) match wins.
  std::optional<FileMapping> lookup(std::uint32_t shard,
                                    std::string_view host,
                                    std::string_view path) const;

  /// Order-independent hash of a shard's entries (tombstones included):
  /// two replicas with equal digests hold identical shard state.
  std::uint64_t digest(std::uint32_t shard) const;

  std::vector<VersionedRule> entries(std::uint32_t shard) const;

  /// Live (non-tombstone) entries in one shard / across all shards.
  std::size_t live_count(std::uint32_t shard) const;
  std::size_t live_count() const;

  /// Drops a whole shard bucket (post-handoff GC on the old owner).
  void drop_shard(std::uint32_t shard);

 private:
  using Key = std::pair<std::string, std::string>;

  static Key key_of(const MappingRule& rule) {
    return {rule.host_pattern, rule.path_pattern};
  }

  /// True when `incoming` beats `current` under the deterministic
  /// concurrent-write rule: higher (priority, writer id).
  static bool concurrent_winner(const VersionedRule& incoming,
                                const VersionedRule& current);

  const std::string replica_id_;

  mutable Mutex mu_;
  std::map<std::uint32_t, std::map<Key, VersionedRule>> shards_
      GUARDED_BY(mu_);
  std::uint64_t lamport_ GUARDED_BY(mu_) = 0;
};

std::string_view applied_name(ReplicaStore::Applied applied) noexcept;

}  // namespace griddles::gns
