#include "src/gns/antientropy.h"

#include <algorithm>
#include <utility>

#include "src/common/strings.h"
#include "src/fault/plan.h"
#include "src/obs/metrics.h"

namespace griddles::gns {

namespace {
/// Handles cached once; see src/obs/metrics.h naming scheme.
struct AntiEntropyMetrics {
  obs::Counter& rounds;  // full pairwise rounds driven by the cluster

  static AntiEntropyMetrics& get() {
    auto& registry = obs::MetricsRegistry::global();
    static AntiEntropyMetrics metrics{
        registry.counter("gns.antientropy.rounds"),
    };
    return metrics;
  }
};
}  // namespace

GnsCluster::GnsCluster(net::Transport& transport, Options options)
    : transport_(transport), options_(options) {
  MutexLock lock(mu_);
  map_.num_shards = std::max<std::uint32_t>(1, options_.num_shards);
  map_.replication = options_.replication;
}

GnsCluster::~GnsCluster() { stop(); }

ShardMap GnsCluster::map() const {
  MutexLock lock(mu_);
  return map_;
}

std::vector<ReplicaAddress> GnsCluster::endpoints() const {
  std::vector<ReplicaAddress> result;
  MutexLock lock(mu_);
  result.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    result.push_back({node->name(), node->endpoint()});
  }
  return result;
}

std::size_t GnsCluster::replica_count() const {
  MutexLock lock(mu_);
  return nodes_.size();
}

std::shared_ptr<ReplicaNode> GnsCluster::node(std::string_view name) const {
  MutexLock lock(mu_);
  for (const auto& node : nodes_) {
    if (node->name() == name) return node;
  }
  return nullptr;
}

std::vector<std::shared_ptr<ReplicaNode>> GnsCluster::snapshot() const {
  MutexLock lock(mu_);
  return nodes_;
}

void GnsCluster::install(const ShardMap& map) {
  std::vector<std::shared_ptr<ReplicaNode>> all;
  {
    MutexLock lock(mu_);
    all = nodes_;
    for (const Retiring& retiring : retiring_) all.push_back(retiring.node);
  }
  for (const auto& node : all) node->set_map(map);
}

Status GnsCluster::add_replica(std::string name, net::Endpoint bind) {
  auto joining = std::make_shared<ReplicaNode>(name, transport_, bind,
                                               options_.format);
  ShardMap old_map;
  ShardMap new_map;
  std::vector<std::shared_ptr<ReplicaNode>> peers;
  bool live;
  {
    MutexLock lock(mu_);
    for (const auto& node : nodes_) {
      if (node->name() == name) {
        return already_exists(strings::cat("gns replica ", name));
      }
    }
    old_map = map_;
    new_map = old_map;
    new_map.replicas.push_back(name);
    std::sort(new_map.replicas.begin(), new_map.replicas.end());
    new_map.epoch = old_map.epoch + 1;
    peers = nodes_;
    nodes_.push_back(joining);
    map_ = new_map;
    live = started_;
  }
  for (const auto& peer : peers) {
    peer->set_peer(name, bind);
    joining->set_peer(peer->name(), peer->endpoint());
  }
  if (live) {
    GL_RETURN_IF_ERROR(joining->start());
    // Prime every shard the new epoch assigns the joiner BEFORE any
    // client can route to it; a partitioned source just means the shard
    // arrives later via anti-entropy.
    for (const std::uint32_t shard : new_map.shards_of(name)) {
      for (const std::string& source : old_map.owners(shard)) {
        if (source == name) continue;
        if (joining->sync_shard_from(source, shard).is_ok()) break;
      }
    }
  }
  install(new_map);
  if (live) {
    // Old owners that lost a shard serve stale-map readers through the
    // handoff lease, then GC the bucket.
    const WallClock::time_point drop_at =
        WallClock::now() + options_.handoff_lease;
    for (const auto& peer : peers) {
      for (const std::uint32_t shard : old_map.shards_of(peer->name())) {
        if (!new_map.owns(peer->name(), shard)) {
          peer->schedule_drop(shard, drop_at);
        }
      }
    }
  }
  return Status::ok();
}

Status GnsCluster::remove_replica(const std::string& name) {
  std::shared_ptr<ReplicaNode> leaving;
  ShardMap old_map;
  ShardMap new_map;
  std::vector<std::shared_ptr<ReplicaNode>> survivors;
  bool live;
  {
    MutexLock lock(mu_);
    auto it = std::find_if(nodes_.begin(), nodes_.end(),
                           [&](const auto& node) {
                             return node->name() == name;
                           });
    if (it == nodes_.end()) {
      return not_found(strings::cat("gns replica ", name));
    }
    if (nodes_.size() == 1) {
      return failed_precondition("gns: cannot remove the last replica");
    }
    leaving = *it;
    nodes_.erase(it);
    old_map = map_;
    new_map = old_map;
    new_map.replicas.erase(std::remove(new_map.replicas.begin(),
                                       new_map.replicas.end(), name),
                           new_map.replicas.end());
    new_map.epoch = old_map.epoch + 1;
    map_ = new_map;
    survivors = nodes_;
    live = started_;
    retiring_.push_back(
        {leaving, WallClock::now() + options_.handoff_lease});
  }
  if (live) {
    // Every shard the leaver owned gains owners under the new epoch;
    // sync them (from the leaver first, any surviving old owner as the
    // fallback) before anyone routes by the new map.
    for (const auto& survivor : survivors) {
      for (const std::uint32_t shard :
           new_map.shards_of(survivor->name())) {
        if (old_map.owns(survivor->name(), shard)) continue;
        if (survivor->sync_shard_from(name, shard).is_ok()) continue;
        for (const std::string& source : old_map.owners(shard)) {
          if (source == name || source == survivor->name()) continue;
          if (survivor->sync_shard_from(source, shard).is_ok()) break;
        }
      }
    }
  }
  install(new_map);
  for (const auto& survivor : survivors) survivor->remove_peer(name);
  if (!live) reap_retired(/*force=*/true);
  return Status::ok();
}

Status GnsCluster::start() {
  std::vector<std::shared_ptr<ReplicaNode>> nodes;
  {
    MutexLock lock(mu_);
    if (started_) return Status::ok();
    if (nodes_.empty()) {
      return failed_precondition("gns cluster: no replicas added");
    }
    started_ = true;
    nodes = nodes_;
  }
  for (const auto& node : nodes) {
    GL_RETURN_IF_ERROR(node->start());
  }
  install(map());
  if (options_.ae_interval.count() > 0) {
    MutexLock lock(ae_mu_);
    ae_stop_ = false;
    ae_thread_ = std::thread([this] { ae_loop(); });
  }
  return Status::ok();
}

void GnsCluster::stop() {
  {
    MutexLock lock(ae_mu_);
    ae_stop_ = true;
    ae_cv_.notify_all();
  }
  if (ae_thread_.joinable()) ae_thread_.join();
  reap_retired(/*force=*/true);
  std::vector<std::shared_ptr<ReplicaNode>> nodes;
  {
    MutexLock lock(mu_);
    nodes = nodes_;
    started_ = false;
  }
  for (const auto& node : nodes) node->stop();
}

Status GnsCluster::put(MappingRule rule, bool tombstone) {
  const ShardMap map = this->map();
  const std::uint32_t shard =
      map.shard_of_rule(rule.host_pattern, rule.path_pattern);
  Status last = unavailable("gns cluster: no owner reachable");
  for (const std::string& owner : map.owners(shard)) {
    // Skip die@gns-dead owners exactly like the lookup walk does, so a
    // write during an outage coordinates on the next preference-list
    // owner (which is what makes partition drills deterministic).
    if (fault::Plan* plan = fault::armed(); plan != nullptr) {
      const fault::Decision verdict =
          plan->consult(fault::Site::kGns, owner);
      if (verdict.action == fault::Decision::Action::kFail ||
          verdict.action == fault::Decision::Action::kKill) {
        last = unavailable(strings::cat("injected fault: gns ", owner));
        continue;
      }
      if (verdict.action == fault::Decision::Action::kDelay) {
        fault::sleep_for_model(verdict.delay);
      }
    }
    const std::shared_ptr<ReplicaNode> owner_node = node(owner);
    if (owner_node == nullptr) continue;
    const Result<std::uint64_t> put_result =
        owner_node->put(rule, tombstone, /*allow_forward=*/false);
    if (put_result.is_ok()) return Status::ok();
    last = put_result.status();
  }
  return last;
}

Status GnsCluster::add_rule(MappingRule rule) {
  return put(std::move(rule), /*tombstone=*/false);
}

Status GnsCluster::remove_rule(const std::string& host_pattern,
                               const std::string& path_pattern) {
  MappingRule rule;
  rule.host_pattern = host_pattern;
  rule.path_pattern = path_pattern;
  return put(std::move(rule), /*tombstone=*/true);
}

std::uint64_t GnsCluster::run_antientropy_round() {
  reap_retired(/*force=*/false);
  const std::vector<std::shared_ptr<ReplicaNode>> nodes = snapshot();
  AntiEntropyMetrics::get().rounds.add();
  std::uint64_t repaired = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      // One direction per pair: the exchange verb repairs both ends.
      // A severed/dead pair fails typed and is simply retried next
      // round — that is the whole point of anti-entropy.
      const Result<std::uint64_t> synced =
          nodes[i]->sync_with(nodes[j]->name());
      if (synced.is_ok()) repaired += *synced;
    }
  }
  for (const auto& node : nodes) node->gc_dropped_shards();
  return repaired;
}

bool GnsCluster::converged() const {
  const std::vector<std::shared_ptr<ReplicaNode>> nodes = snapshot();
  const ShardMap map = this->map();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      for (const std::uint32_t shard : map.shards_of(nodes[i]->name())) {
        if (!map.owns(nodes[j]->name(), shard)) continue;
        if (nodes[i]->store().digest(shard) !=
            nodes[j]->store().digest(shard)) {
          return false;
        }
      }
    }
  }
  return true;
}

Status GnsCluster::converge(int max_rounds) {
  for (int round = 0; round < max_rounds; ++round) {
    if (converged()) return Status::ok();
    run_antientropy_round();
  }
  if (converged()) return Status::ok();
  return unavailable(strings::cat(
      "gns cluster: still divergent after ", max_rounds,
      " anti-entropy rounds (partition still armed?)"));
}

void GnsCluster::reap_retired(bool force) {
  std::vector<std::shared_ptr<ReplicaNode>> due;
  {
    MutexLock lock(mu_);
    const WallClock::time_point now = WallClock::now();
    auto keep = retiring_.begin();
    for (Retiring& retiring : retiring_) {
      if (force || retiring.until <= now) {
        due.push_back(std::move(retiring.node));
      } else {
        *keep++ = std::move(retiring);
      }
    }
    retiring_.erase(keep, retiring_.end());
  }
  for (const auto& node : due) node->stop();
}

void GnsCluster::ae_loop() {
  MutexLock lock(ae_mu_);
  while (!ae_stop_) {
    const auto deadline = WallClock::now() + options_.ae_interval;
    // lint: blocking-ok (monitor wait: releases ae_mu_ until tick/stop)
    if (ae_cv_.wait_until(ae_mu_, deadline,
                          [&]() REQUIRES(ae_mu_) { return ae_stop_; })) {
      return;
    }
    lock.unlock();
    run_antientropy_round();
    lock.lock();
  }
}

}  // namespace griddles::gns
