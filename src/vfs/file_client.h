// FileClient: the uniform file-operation interface behind the File
// Multiplexer (paper Figure 4).
//
// Every IO mechanism — local files, remote proxy access, staged copies,
// replicated files, Grid Buffer streams — implements this interface, so
// the application-facing FM can swap mechanisms per OPEN without the
// application noticing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace griddles::vfs {

/// Open disposition, modelled on legacy fopen semantics.
struct OpenFlags {
  bool read = false;
  bool write = false;
  bool create = false;
  bool truncate = false;
  bool append = false;

  /// "r": read an existing file.
  static OpenFlags input() { return {.read = true}; }
  /// "w": create/truncate for writing.
  static OpenFlags output() {
    return {.write = true, .create = true, .truncate = true};
  }
  /// "r+": read and write an existing file.
  static OpenFlags update() { return {.read = true, .write = true}; }
  /// "a": append, creating if needed.
  static OpenFlags appending() {
    return {.write = true, .create = true, .append = true};
  }

  bool readable() const noexcept { return read; }
  bool writable() const noexcept { return write; }
};

enum class Whence : std::uint8_t { kSet = 0, kCurrent = 1, kEnd = 2 };

/// One open file, whatever its transport. Implementations are not
/// required to be thread-safe: like a POSIX fd cursor, each open file is
/// driven by one application thread.
class FileClient {
 public:
  virtual ~FileClient() = default;

  /// Reads at the cursor. Returns the byte count; 0 means end-of-file.
  /// A Grid Buffer reader blocks here until the writer produces the data
  /// or closes the channel.
  virtual Result<std::size_t> read(MutableByteSpan out) = 0;

  /// Writes at the cursor; returns bytes accepted (always all, or error).
  virtual Result<std::size_t> write(ByteSpan data) = 0;

  /// Moves the cursor; returns the new absolute offset.
  /// Whence::kEnd on a still-streaming Grid Buffer blocks until EOF is
  /// known (the writer closed).
  virtual Result<std::uint64_t> seek(std::int64_t offset, Whence whence) = 0;

  /// Current cursor position.
  virtual std::uint64_t tell() const = 0;

  /// Total size, when knowable (kUnavailable for an unfinished stream).
  virtual Result<std::uint64_t> size() = 0;

  /// Pushes buffered writes toward their destination.
  virtual Status flush() = 0;

  /// Completes the file: flushes, publishes EOF / copies back staged
  /// data. Idempotent. The destructor closes with best effort.
  virtual Status close() = 0;

  /// Diagnostic label, e.g. "local:/tmp/x" or "gridbuffer:job.sf".
  virtual std::string describe() const = 0;
};

/// Reads until EOF into a byte vector (helper for tests and staging).
Result<Bytes> read_all(FileClient& file, std::size_t chunk_size = 1 << 16);

/// Writes the whole span through possibly-partial writes.
Status write_all(FileClient& file, ByteSpan data);

}  // namespace griddles::vfs
