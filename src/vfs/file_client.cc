#include "src/vfs/file_client.h"

namespace griddles::vfs {

Result<Bytes> read_all(FileClient& file, std::size_t chunk_size) {
  Bytes out;
  Bytes chunk(chunk_size);
  while (true) {
    GL_ASSIGN_OR_RETURN(const std::size_t n,
                        file.read({chunk.data(), chunk.size()}));
    if (n == 0) return out;
    out.insert(out.end(), chunk.begin(), chunk.begin() + n);
  }
}

Status write_all(FileClient& file, ByteSpan data) {
  std::size_t put = 0;
  while (put < data.size()) {
    GL_ASSIGN_OR_RETURN(const std::size_t n,
                        file.write(data.subspan(put)));
    if (n == 0) return io_error("write made no progress");
    put += n;
  }
  return Status::ok();
}

}  // namespace griddles::vfs
