#include "src/vfs/local_client.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/strings.h"

namespace griddles::vfs {

namespace {
Status errno_status(const char* op, const std::string& path) {
  return io_error(
      strings::cat(op, " ", path, ": ", strings::errno_message(errno)));
}
}  // namespace

Result<std::unique_ptr<LocalFileClient>> LocalFileClient::open(
    const std::string& path, OpenFlags flags) {
  if (!flags.read && !flags.write) {
    return invalid_argument("open flags select neither read nor write");
  }
  int oflags = 0;
  if (flags.read && flags.write) {
    oflags = O_RDWR;
  } else if (flags.write) {
    oflags = O_WRONLY;
  } else {
    oflags = O_RDONLY;
  }
  if (flags.create) oflags |= O_CREAT;
  if (flags.truncate) oflags |= O_TRUNC;
  if (flags.append) oflags |= O_APPEND;

  // Ensure the parent directory exists for newly created files, matching
  // what a workflow stage expects of its working directory.
  if (flags.create) {
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
  }

  const int fd = ::open(path.c_str(), oflags, 0644);
  if (fd < 0) {
    if (errno == ENOENT) {
      return not_found(strings::cat("local file not found: ", path));
    }
    return errno_status("open", path);
  }
  return std::unique_ptr<LocalFileClient>(
      new LocalFileClient(fd, path, flags.read, flags.write));
}

LocalFileClient::LocalFileClient(int fd, std::string path, bool readable,
                                 bool writable)
    : fd_(fd), path_(std::move(path)), readable_(readable),
      writable_(writable) {}

LocalFileClient::~LocalFileClient() { (void)close(); }

Result<std::size_t> LocalFileClient::read(MutableByteSpan out) {
  if (fd_ < 0) return failed_precondition("read on closed file");
  if (!readable_) return permission_denied("file not open for reading");
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::read(fd_, out.data() + got, out.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("read", path_);
    }
    if (n == 0) break;  // EOF
    got += static_cast<std::size_t>(n);
  }
  cursor_ += got;
  return got;
}

Result<std::size_t> LocalFileClient::write(ByteSpan data) {
  if (fd_ < 0) return failed_precondition("write on closed file");
  if (!writable_) return permission_denied("file not open for writing");
  std::size_t put = 0;
  while (put < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + put, data.size() - put);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("write", path_);
    }
    put += static_cast<std::size_t>(n);
  }
  cursor_ += put;
  return put;
}

Result<std::uint64_t> LocalFileClient::seek(std::int64_t offset,
                                            Whence whence) {
  if (fd_ < 0) return failed_precondition("seek on closed file");
  int posix_whence = SEEK_SET;
  if (whence == Whence::kCurrent) posix_whence = SEEK_CUR;
  if (whence == Whence::kEnd) posix_whence = SEEK_END;
  const off_t pos = ::lseek(fd_, offset, posix_whence);
  if (pos < 0) return errno_status("seek", path_);
  cursor_ = static_cast<std::uint64_t>(pos);
  return cursor_;
}

std::uint64_t LocalFileClient::tell() const { return cursor_; }

Result<std::uint64_t> LocalFileClient::size() {
  if (fd_ < 0) return failed_precondition("size of closed file");
  struct stat st {};
  if (::fstat(fd_, &st) != 0) return errno_status("stat", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

Status LocalFileClient::flush() {
  if (fd_ < 0) return Status::ok();
  // Data is unbuffered at this layer; nothing to do. fsync durability is
  // deliberately not forced: the paper's pipelines rely on OS caching.
  return Status::ok();
}

Status LocalFileClient::close() {
  if (fd_ < 0) return Status::ok();
  const int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) return errno_status("close", path_);
  return Status::ok();
}

std::string LocalFileClient::describe() const {
  return strings::cat("local:", path_);
}

Result<Bytes> read_file(const std::string& path) {
  GL_ASSIGN_OR_RETURN(auto file,
                      LocalFileClient::open(path, OpenFlags::input()));
  return read_all(*file);
}

Status write_file(const std::string& path, ByteSpan data) {
  GL_ASSIGN_OR_RETURN(auto file,
                      LocalFileClient::open(path, OpenFlags::output()));
  GL_RETURN_IF_ERROR(write_all(*file, data));
  return file->close();
}

Result<std::uint64_t> file_size(const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) {
      return not_found(strings::cat("no such file: ", path));
    }
    return io_error(
        strings::cat("stat ", path, ": ", strings::errno_message(errno)));
  }
  return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace griddles::vfs
