// LocalFileClient: the pass-through to the conventional local file system
// (the paper's "Local File Client", Figure 4), plus small local-FS
// helpers shared by the staging and cache code.
#pragma once

#include <filesystem>
#include <memory>
#include <string>

#include "src/vfs/file_client.h"

namespace griddles::vfs {

class LocalFileClient final : public FileClient {
 public:
  /// Opens `path` with fopen-style semantics.
  static Result<std::unique_ptr<LocalFileClient>> open(
      const std::string& path, OpenFlags flags);

  ~LocalFileClient() override;

  LocalFileClient(const LocalFileClient&) = delete;
  LocalFileClient& operator=(const LocalFileClient&) = delete;

  Result<std::size_t> read(MutableByteSpan out) override;
  Result<std::size_t> write(ByteSpan data) override;
  Result<std::uint64_t> seek(std::int64_t offset, Whence whence) override;
  std::uint64_t tell() const override;
  Result<std::uint64_t> size() override;
  Status flush() override;
  Status close() override;
  std::string describe() const override;

  const std::string& path() const noexcept { return path_; }

 private:
  LocalFileClient(int fd, std::string path, bool readable, bool writable);

  int fd_;
  std::string path_;
  bool readable_;
  bool writable_;
  std::uint64_t cursor_ = 0;
};

/// Reads a whole local file.
Result<Bytes> read_file(const std::string& path);

/// Writes (create/truncate) a whole local file, creating parent dirs.
Status write_file(const std::string& path, ByteSpan data);

/// Size of a local file.
Result<std::uint64_t> file_size(const std::string& path);

}  // namespace griddles::vfs
