// IoTracer: per-file IO spans, emitted as JSON lines.
//
// A span covers one descriptor's life in the File Multiplexer, open to
// close: the routing mode the GNS mapping selected, bytes moved, call
// counts, and wall time spent blocked inside reads (buffer stalls,
// tailing polls, proxy round trips). The tracer is off by default —
// enabled() is one relaxed atomic load, and when it returns false the FM
// records nothing — so tracing costs nothing unless a run opts in
// (`workflow_cli --trace=...`, or IoTracer::global().enable(true) in
// tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"

namespace griddles::obs {

/// One open->close lifetime of a multiplexed file.
struct IoSpan {
  std::string host;    // FM host identity (a testbed machine name)
  std::string path;    // canonical (GNS-key) path
  std::string mode;    // routing decision: local|tail|staged|proxy|...
  double open_s = 0;   // model time at open
  double close_s = 0;  // model time at close
  // Wall seconds at open/close, on the SpanCollector's origin-relative
  // timeline so IO-trace lines line up with exported causal spans.
  double wall_open_s = 0;
  double wall_close_s = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t seeks = 0;
  double read_wait_s = 0;  // wall seconds blocked inside read calls
  /// Reads/writes on this descriptor that surfaced a fault-class Status
  /// (kUnavailable or kDataLoss) — injected or real.
  std::uint64_t faults = 0;
};

/// Serializes one span as a single JSON object line (no trailing \n).
std::string to_json_line(const IoSpan& span);

/// Collects finished spans. record() is mutex-guarded but cold (once per
/// file close); the hot-path question "is tracing on?" is an atomic.
class IoTracer {
 public:
  IoTracer() = default;
  IoTracer(const IoTracer&) = delete;
  IoTracer& operator=(const IoTracer&) = delete;

  /// The process-wide tracer the File Multiplexer reports into.
  static IoTracer& global();

  void enable(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Stores a finished span (no-op when disabled).
  void record(IoSpan span);

  /// Removes and returns every stored span.
  std::vector<IoSpan> drain();

  /// Drains and renders all spans as newline-separated JSON lines.
  std::string drain_json_lines();

 private:
  std::atomic<bool> enabled_{false};
  mutable Mutex mu_;
  std::vector<IoSpan> spans_ GUARDED_BY(mu_);
};

}  // namespace griddles::obs
