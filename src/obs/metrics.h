// Process-wide metrics: named Counter / Gauge / Histogram handles.
//
// The registry is the single place runtime telemetry lives. Registration
// (name -> handle) takes a mutex once; after that every increment or
// observation on the returned handle is a branch plus a relaxed atomic —
// no lock on the hot path, so the File Multiplexer, Grid Buffer and RPC
// layers can record every operation without perturbing the modelled
// timings they measure. Handles are never invalidated: the registry owns
// them for the life of the process, so components cache references at
// construction (or via a function-local static) and bump them freely
// from any thread.
//
// Naming scheme (see DESIGN.md "Observability"): dot-separated
// `<subsystem>.<object>.<aspect>`, with unit suffixes on histograms
// (`_s` for seconds): `fm.open.local`, `gridbuffer.read.wait_s`,
// `rpc.client.bytes.sent`.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/thread_annotations.h"

namespace griddles::obs {

/// Monotonically increasing event count. Increment is one relaxed
/// fetch_add (lock-free on every supported target).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A level that can move both ways (bytes buffered, live connections).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void sub(std::int64_t delta) noexcept { add(-delta); }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over double samples. A sample lands in the
/// first bucket whose upper bound is >= the value; values above every
/// bound land in the implicit overflow bucket. observe() is a bounded
/// branch scan plus three relaxed atomics (bucket, count, CAS-added sum).
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value) noexcept {
    std::size_t bucket = bounds_.size();  // overflow by default
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (value <= bounds_[i]) {
        bucket = i;
        break;
      }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Relaxed CAS loop: doubles have no hardware fetch_add everywhere.
    std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
    while (!sum_bits_.compare_exchange_weak(
        bits, std::bit_cast<std::uint64_t>(
                  std::bit_cast<double>(bits) + value),
        std::memory_order_relaxed)) {
    }
  }

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Count in bucket `i`; `i == bounds().size()` is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // bit-cast double
};

/// `count` bounds starting at `start`, each `factor` times the previous:
/// the standard latency-histogram shape.
std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count);

/// Name -> handle registry. Thread-safe; handles live forever.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem reports into.
  static MetricsRegistry& global();

  /// Finds or creates; the returned reference is stable forever.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First registration fixes the bucket bounds; later callers with the
  /// same name get the existing histogram regardless of their bounds.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds);

  /// Visits every metric in name order (exporters, tests).
  template <typename CounterFn, typename GaugeFn, typename HistogramFn>
  void visit(CounterFn on_counter, GaugeFn on_gauge,
             HistogramFn on_histogram) const {
    MutexLock lock(mu_);
    for (const auto& [name, c] : counters_) on_counter(name, *c);
    for (const auto& [name, g] : gauges_) on_gauge(name, *g);
    for (const auto& [name, h] : histograms_) on_histogram(name, *h);
  }

  /// Zeroes every registered metric (bench/test isolation). Handles stay
  /// valid; concurrent increments are not lost structurally (they land
  /// before or after the reset).
  void reset();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace griddles::obs
