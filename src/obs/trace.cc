#include "src/obs/trace.h"

#include "src/obs/export.h"

namespace griddles::obs {

std::string to_json_line(const IoSpan& span) {
  std::string out = "{\"host\":";
  out += json_quote(span.host);
  out += ",\"path\":";
  out += json_quote(span.path);
  out += ",\"mode\":";
  out += json_quote(span.mode);
  out += ",\"open_s\":";
  out += json_number(span.open_s);
  out += ",\"close_s\":";
  out += json_number(span.close_s);
  out += ",\"wall_open_s\":";
  out += json_number(span.wall_open_s);
  out += ",\"wall_close_s\":";
  out += json_number(span.wall_close_s);
  out += ",\"bytes_read\":";
  out += std::to_string(span.bytes_read);
  out += ",\"bytes_written\":";
  out += std::to_string(span.bytes_written);
  out += ",\"reads\":";
  out += std::to_string(span.reads);
  out += ",\"writes\":";
  out += std::to_string(span.writes);
  out += ",\"seeks\":";
  out += std::to_string(span.seeks);
  out += ",\"read_wait_s\":";
  out += json_number(span.read_wait_s);
  out += ",\"faults\":";
  out += std::to_string(span.faults);
  out.push_back('}');
  return out;
}

IoTracer& IoTracer::global() {
  static IoTracer tracer;
  return tracer;
}

void IoTracer::record(IoSpan span) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  spans_.push_back(std::move(span));
}

std::vector<IoSpan> IoTracer::drain() {
  MutexLock lock(mu_);
  std::vector<IoSpan> out = std::move(spans_);
  spans_.clear();
  return out;
}

std::string IoTracer::drain_json_lines() {
  std::string out;
  for (const IoSpan& span : drain()) {
    out += to_json_line(span);
    out.push_back('\n');
  }
  return out;
}

}  // namespace griddles::obs
