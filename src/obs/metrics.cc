#include "src/obs/metrics.h"

#include <cassert>

namespace griddles::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  assert(!bounds_.empty() && "histogram needs at least one bound");
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    assert(bounds_[i] < bounds_[i + 1] && "bounds must increase");
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<Histogram>(std::move(upper_bounds)))
              .first->second;
}

void MetricsRegistry::reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace griddles::obs
