#include "src/obs/span.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "src/obs/export.h"
#include "src/obs/metrics.h"

namespace griddles::obs {

/// The thread-local side of the collector: an unsynchronized span buffer
/// plus this thread's viewer-lane ordinal. The destructor flushes what
/// is left when the thread exits, so short-lived workers (copier chunk
/// streams, RPC connection threads) never strand spans. Namespace scope
/// (not anonymous) so the friend declaration in SpanCollector binds.
class ThreadSpanBuffer {
 public:
  ThreadSpanBuffer() : tid_(next_tid()) {
    buffer_.reserve(SpanCollector::kThreadFlushBatch);
  }
  ~ThreadSpanBuffer() {
    if (!buffer_.empty()) SpanCollector::global().store_batch(buffer_);
  }

  std::uint32_t tid() const noexcept { return tid_; }

  void push(SpanRecord&& record) {
    buffer_.push_back(std::move(record));
    if (buffer_.size() >= SpanCollector::kThreadFlushBatch) flush();
  }

  void flush() {
    if (!buffer_.empty()) SpanCollector::global().store_batch(buffer_);
  }

 private:
  static std::uint32_t next_tid() noexcept {
    // lint: not-a-metric (trace-viewer lane ordinal)
    static std::atomic<std::uint32_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint32_t tid_;
  std::vector<SpanRecord> buffer_;
};

namespace {

ThreadSpanBuffer& thread_buffer() {
  thread_local ThreadSpanBuffer buffer;
  return buffer;
}

thread_local TraceContext g_current_context;

Counter& dropped_counter() {
  static Counter& counter =
      MetricsRegistry::global().counter("obs.span.dropped");
  return counter;
}

}  // namespace

std::string_view span_kind_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kWorkflow:
      return "workflow";
    case SpanKind::kStage:
      return "stage";
    case SpanKind::kSchedule:
      return "schedule";
    case SpanKind::kOpen:
      return "open";
    case SpanKind::kBufferWait:
      return "buffer_wait";
    case SpanKind::kCopy:
      return "copy";
    case SpanKind::kChunk:
      return "chunk";
    case SpanKind::kRpc:
      return "rpc";
    case SpanKind::kRetry:
      return "retry";
    case SpanKind::kFailover:
      return "failover";
    case SpanKind::kRecovery:
      return "recovery";
    case SpanKind::kRelay:
      return "relay";
    case SpanKind::kShed:
      return "shed";
    case SpanKind::kDeadlineExpired:
      return "deadline_expired";
    case SpanKind::kConflict:
      return "conflict";
    case SpanKind::kOther:
      return "other";
  }
  return "other";
}

SpanCollector& SpanCollector::global() {
  // Leaky singleton: thread-local buffer destructors flush into it at
  // thread exit, which may run after static destructors would have.
  static SpanCollector* collector = new SpanCollector();
  return *collector;
}

SpanCollector::SpanCollector() : wall_origin_(WallClock::now()) {
  // Register the drop counter before any hot path needs it, so the
  // store_batch overflow path never takes the registry lock.
  dropped_counter();
}

double SpanCollector::model_now_s() const noexcept {
  const Clock* clock = model_clock_.load(std::memory_order_acquire);
  return clock == nullptr ? 0.0 : to_seconds_d(clock->now());
}

void SpanCollector::record(SpanRecord record) {
  if (!enabled()) return;
  ThreadSpanBuffer& buffer = thread_buffer();
  if (record.tid == 0) record.tid = buffer.tid();
  buffer.push(std::move(record));
}

void SpanCollector::store_batch(std::vector<SpanRecord>& batch) {
  std::size_t dropped = 0;
  {
    MutexLock lock(mu_);
    for (SpanRecord& record : batch) {
      if (spans_.size() >= capacity_) {
        ++dropped;
        continue;
      }
      spans_.push_back(std::move(record));
    }
  }
  batch.clear();
  if (dropped > 0) {
    dropped_.fetch_add(dropped, std::memory_order_relaxed);
    dropped_counter().add(dropped);
  }
}

std::vector<SpanRecord> SpanCollector::drain() {
  flush_thread_buffer();
  std::vector<SpanRecord> out;
  MutexLock lock(mu_);
  out.swap(spans_);
  return out;
}

void SpanCollector::flush_thread_buffer() { thread_buffer().flush(); }

void SpanCollector::set_capacity(std::size_t max_spans) {
  MutexLock lock(mu_);
  capacity_ = max_spans;
}

namespace {

std::string u64_string(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

}  // namespace

std::string to_chrome_event(const SpanRecord& record) {
  // Complete ("X") event: ts/dur in wall microseconds since the
  // collector origin. The 64-bit ids go into args as strings — JSON
  // readers that parse numbers as doubles would corrupt them.
  std::string out = "{\"name\":";
  out += json_quote(record.name);
  out += ",\"cat\":";
  out += json_quote(span_kind_name(record.kind));
  out += ",\"ph\":\"X\",\"ts\":";
  out += json_number(record.wall_start_s * 1e6);
  out += ",\"dur\":";
  out += json_number((record.wall_end_s - record.wall_start_s) * 1e6);
  out += ",\"pid\":1,\"tid\":";
  out += u64_string(record.tid);
  out += ",\"args\":{\"trace_id\":\"";
  out += u64_string(record.trace_id);
  out += "\",\"span_id\":\"";
  out += u64_string(record.span_id);
  out += "\",\"parent_id\":\"";
  out += u64_string(record.parent_id);
  out += "\",\"model_start_s\":";
  out += json_number(record.model_start_s);
  out += ",\"model_end_s\":";
  out += json_number(record.model_end_s);
  for (const auto& [key, value] : record.attrs) {
    out += ',';
    out += json_quote(key);
    out += ':';
    out += json_quote(value);
  }
  out += "}}";
  return out;
}

std::string SpanCollector::drain_chrome_json() {
  std::vector<SpanRecord> spans = drain();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& record : spans) {
    if (!first) out += ",\n";
    first = false;
    out += to_chrome_event(record);
  }
  out += "]}\n";
  return out;
}

TraceContext current_context() noexcept { return g_current_context; }

ScopedTraceContext::ScopedTraceContext(TraceContext context) noexcept
    : saved_(g_current_context) {
  g_current_context = context;
}

ScopedTraceContext::~ScopedTraceContext() { g_current_context = saved_; }

Span::Span(SpanKind kind, std::string_view name) {
  if (!SpanCollector::global().enabled()) return;
  start(kind, name, g_current_context);
}

Span::Span(SpanKind kind, std::string_view name, TraceContext parent) {
  if (!SpanCollector::global().enabled()) return;
  start(kind, name, parent);
}

void Span::start(SpanKind kind, std::string_view name, TraceContext parent) {
  SpanCollector& collector = SpanCollector::global();
  active_ = true;
  record_.kind = kind;
  record_.name.assign(name);
  record_.span_id = collector.next_id();
  if (parent.valid()) {
    record_.trace_id = parent.trace_id;
    record_.parent_id = parent.span_id;
  } else {
    record_.trace_id = collector.next_id();
    record_.parent_id = 0;
  }
  record_.wall_start_s = collector.wall_now_s();
  record_.model_start_s = collector.model_now_s();
  saved_ = g_current_context;
  g_current_context = TraceContext{record_.trace_id, record_.span_id};
  installed_ = true;
}

void Span::end() {
  if (!active_ || ended_) return;
  ended_ = true;
  if (installed_) {
    g_current_context = saved_;
    installed_ = false;
  }
  SpanCollector& collector = SpanCollector::global();
  record_.wall_end_s = collector.wall_now_s();
  record_.model_end_s = collector.model_now_s();
  collector.record(std::move(record_));
}

Span::~Span() { end(); }

void Span::add_attr(std::string_view key, std::string_view value) {
  if (!active_ || ended_) return;
  record_.attrs.emplace_back(std::string(key), std::string(value));
}

TraceContext Span::context() const noexcept {
  if (!active_ || ended_) return TraceContext{};
  return TraceContext{record_.trace_id, record_.span_id};
}

}  // namespace griddles::obs
