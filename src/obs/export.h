// Snapshot/ToJson exporter for the metrics registry, plus the strict
// mini-parser that reads the exporter's own output back (bench
// comparison tooling, round-trip tests).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/obs/metrics.h"

namespace griddles::obs {

/// A point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;          // upper bounds
    std::vector<std::uint64_t> counts;   // bounds.size()+1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramData> histograms;
};

/// Captures the registry's current values (the process registry by
/// default).
MetricsSnapshot snapshot(
    const MetricsRegistry& registry = MetricsRegistry::global());

/// Renders a snapshot as one JSON object:
///   {"counters":{...},"gauges":{...},
///    "histograms":{"name":{"bounds":[...],"counts":[...],
///                          "count":N,"sum":S}, ...}}
std::string to_json(const MetricsSnapshot& snapshot);

/// Parses to_json() output back into a snapshot (strict: accepts exactly
/// the exporter's shape plus arbitrary whitespace).
Result<MetricsSnapshot> parse_snapshot(std::string_view json);

/// `"..."` with the JSON escapes the exporter needs (quote, backslash,
/// control characters).
std::string json_quote(std::string_view text);

/// Shortest round-trippable rendering of a double (JSON number).
std::string json_number(double value);

/// Writes `content` to `path` ("-" = stdout), checking the stream after
/// both the write and the close so a full disk or revoked permission
/// surfaces as a typed Status instead of a silently truncated report.
Status write_text_file(const std::string& path, std::string_view content);

/// Verifies `path` can be opened for writing WITHOUT truncating what is
/// there ("-" always passes). Telemetry consumers probe their output
/// paths up front so a typo fails the run before hours of work, not
/// after.
Status probe_writable(const std::string& path);

/// Writes to_json(snapshot) to `path`; "-" writes to stdout.
Status write_json_file(const std::string& path,
                       const MetricsSnapshot& snapshot);

}  // namespace griddles::obs
