// Causal tracing: per-workflow span trees with cross-thread and
// cross-RPC context propagation (see DESIGN.md §11 "Causal tracing").
//
// Where the IoTracer (trace.h) answers "what did this descriptor do",
// spans answer "why did the run take this long": every span carries a
// (trace_id, span_id, parent_id) triple, so an exported run reassembles
// into the tree workflow -> stage -> open/copy/rpc/buffer-wait/retry,
// and tools/tracepath.py can walk the tree backwards from the end of the
// run to name the critical path and attribute wall time to compute,
// buffer waits, network transfers and fault retries.
//
// Overhead contract: tracing is off by default, and a disabled hook is
// ONE relaxed atomic load (Span's constructor checks and records
// nothing). Enabled, record() appends to a bounded per-thread buffer
// with no lock; the buffer flushes into the central store (one short
// mutex section) every kThreadFlushBatch spans, and the central store is
// capacity-bounded — overflow drops spans and counts them in the
// `obs.span.dropped` counter rather than growing without bound.
//
// Context propagation rules:
//   - same thread: obs::Span installs itself as the thread's current
//     context for its lifetime (strict stack discipline);
//   - new thread: capture obs::current_context() before spawning and
//     install it in the thread with obs::ScopedTraceContext;
//   - RPC hop: RpcClient stamps the current context into the request
//     frame (net::RpcFrame::trace_id/span_id); RpcServer installs it
//     around the handler, so server-side spans parent to the caller.
//
// Always create spans through the RAII obs::Span helper — naked
// SpanRecord construction outside src/obs/ is rejected by tools/lint.py
// (check `naked-span`), because a begin without a guaranteed end leaves
// half-open spans that break the exported timeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/thread_annotations.h"

namespace griddles::obs {

/// Span taxonomy (DESIGN.md §11 lists the emitter of each kind).
/// tracepath.py maps kinds onto its four attribution buckets:
/// compute (workflow/stage/schedule self time), buffer-wait, network
/// (open/copy/chunk/rpc), retry (retry/failover/recovery).
enum class SpanKind : std::uint8_t {
  kWorkflow,    // one whole WorkflowRunner::run
  kStage,       // one application kernel execution
  kSchedule,    // scheduler machine-assignment search
  kOpen,        // one FileMultiplexer OPEN (GNS lookup + client build)
  kBufferWait,  // Grid Buffer channel blocked read/backpressured write
  kCopy,        // one whole-file staged transfer
  kChunk,       // one chunk of a staged transfer
  kRpc,         // server-side handling of one RPC request
  kRetry,       // one retry attempt (backoff + re-call) after a failure
  kFailover,    // a replica failure survived by moving to the next one
  kRecovery,    // a failed stage re-run via the fallback coupling
  kRelay,       // one multicast relay hop (write + forward to children)
  kConflict,    // one divergent GNS write pair joined deterministically
  kShed,        // a request rejected by admission control (overload)
  kDeadlineExpired,  // work abandoned because its budget ran out
  kOther,
};

std::string_view span_kind_name(SpanKind kind) noexcept;

/// The propagation triple. trace_id == 0 means "no active trace".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const noexcept { return trace_id != 0; }
};

/// One finished span. Carries both clocks: model seconds (testbed time,
/// comparable with IoSpan/TaskResult numbers) and wall seconds since the
/// collector's process-wide origin (what the Chrome trace timeline and
/// the critical path use).
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 for a root span
  SpanKind kind = SpanKind::kOther;
  std::string name;
  double wall_start_s = 0;
  double wall_end_s = 0;
  double model_start_s = 0;  // 0 when no model clock is registered
  double model_end_s = 0;
  std::uint32_t tid = 0;  // small per-thread ordinal (trace viewer lane)
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Collects finished spans. enabled() is the one-relaxed-load fast path;
/// record() is lock-free into a per-thread buffer (the batch flush takes
/// the central mutex once per kThreadFlushBatch spans).
class SpanCollector {
 public:
  /// Spans a thread accumulates before flushing to the central store.
  static constexpr std::size_t kThreadFlushBatch = 64;
  /// Default bound on centrally stored spans (~a few hundred MB worst
  /// case is unacceptable; ~1M spans of ~200B is the ceiling we accept).
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  /// The process-wide collector every subsystem reports into.
  static SpanCollector& global();

  SpanCollector();
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  void enable(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Registers the model clock spans stamp model_start/end_s with (the
  /// testbed clock). Null reverts to wall-only stamping.
  void set_model_clock(const Clock* clock) noexcept {
    model_clock_.store(clock, std::memory_order_release);
  }
  /// Current model seconds (0 when no clock is registered).
  double model_now_s() const noexcept;

  /// Wall seconds since the collector's origin (shared with IoSpan's
  /// wall stamps so both exports align on one timeline).
  double wall_now_s() const noexcept {
    return to_seconds_d(WallClock::now() - wall_origin_);
  }

  /// Process-unique nonzero id for traces and spans (counts up from 1).
  std::uint64_t next_id() noexcept {
    return id_counter_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Raw sink — use the RAII obs::Span helper instead (lint-enforced).
  /// No-op when disabled. Thread-buffered; bounded centrally.
  void record(SpanRecord record);

  /// Flushes the calling thread's buffer and removes and returns every
  /// centrally stored span. Buffers of other still-live threads flush on
  /// their next batch boundary or thread exit, so drain after joining
  /// the workers whose spans matter.
  std::vector<SpanRecord> drain();

  /// Drains and renders everything as a Chrome trace-event / Perfetto
  /// JSON object (load the file in chrome://tracing or ui.perfetto.dev).
  std::string drain_chrome_json();

  /// Spans dropped on central-store overflow since construction (also
  /// mirrored into the `obs.span.dropped` counter).
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Overrides the central-store capacity (tests exercise overflow).
  void set_capacity(std::size_t max_spans);

  /// Flushes the calling thread's buffer into the central store (called
  /// automatically at batch boundaries and thread exit).
  void flush_thread_buffer();

 private:
  friend class ThreadSpanBuffer;

  void store_batch(std::vector<SpanRecord>& batch);

  std::atomic<bool> enabled_{false};
  std::atomic<const Clock*> model_clock_{nullptr};
  const WallClock::time_point wall_origin_;
  // lint: not-a-metric (id generator)
  std::atomic<std::uint64_t> id_counter_{1};
  // lint: not-a-metric (overflow accounting mirrored into obs.span.dropped)
  std::atomic<std::uint64_t> dropped_{0};

  mutable Mutex mu_;
  std::vector<SpanRecord> spans_ GUARDED_BY(mu_);
  std::size_t capacity_ GUARDED_BY(mu_) = kDefaultCapacity;
};

/// Renders one span as a Chrome trace-event object (exposed for tests).
std::string to_chrome_event(const SpanRecord& record);

/// The calling thread's current trace context (invalid when none).
TraceContext current_context() noexcept;

/// Installs `context` as the thread's current context for the scope —
/// the cross-thread / cross-RPC propagation primitive.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext context) noexcept;
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// RAII span. Construction (when the collector is enabled) opens a span
/// as a child of the thread's current context — or a new root trace when
/// there is none — and installs itself as the current context;
/// destruction (or an early end()) stamps the end times, records the
/// span, and restores the previous context. When the collector is
/// disabled the constructor is one relaxed atomic load and everything
/// else is a no-op.
class Span {
 public:
  Span(SpanKind kind, std::string_view name);
  /// Explicit parent (cross-thread handoff without ScopedTraceContext).
  /// An invalid `parent` starts a new root trace.
  Span(SpanKind kind, std::string_view name, TraceContext parent);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key=value attribute (no-op when inactive).
  void add_attr(std::string_view key, std::string_view value);

  /// Ends and records the span now (idempotent; the destructor then does
  /// nothing). Restores the previous thread context.
  void end();

  /// True when the collector was enabled at construction.
  bool active() const noexcept { return active_; }

  /// This span's context — what to propagate to children on other
  /// threads or across RPC.
  TraceContext context() const noexcept;

 private:
  void start(SpanKind kind, std::string_view name, TraceContext parent);

  bool active_ = false;
  bool ended_ = false;
  bool installed_ = false;  // restored context on end
  TraceContext saved_;
  SpanRecord record_;
};

}  // namespace griddles::obs
