#include "src/obs/export.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>

#include "src/common/lockdep.h"
#include "src/common/strings.h"

namespace griddles::obs {

MetricsSnapshot snapshot(const MetricsRegistry& registry) {
  MetricsSnapshot snap;
  registry.visit(
      [&](const std::string& name, const Counter& c) {
        snap.counters[name] = c.value();
      },
      [&](const std::string& name, const Gauge& g) {
        snap.gauges[name] = g.value();
      },
      [&](const std::string& name, const Histogram& h) {
        MetricsSnapshot::HistogramData data;
        data.bounds = h.bounds();
        data.counts.reserve(data.bounds.size() + 1);
        for (std::size_t i = 0; i <= data.bounds.size(); ++i) {
          data.counts.push_back(h.bucket_count(i));
        }
        data.count = h.count();
        data.sum = h.sum();
        snap.histograms[name] = std::move(data);
      });
  // The runtime lock-order detector lives below the obs layer (its hooks
  // sit inside griddles::Mutex), so its counters are bridged into the
  // process snapshot here rather than registered as handles. Local
  // registries used by tests stay untouched.
  if (&registry == &MetricsRegistry::global()) {
    snap.counters["lockorder.edges"] = lockdep::edges();
    snap.counters["lockorder.violations"] = lockdep::violations();
  }
  return snap;
}

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

namespace {

template <typename Map, typename ValueFn>
void append_object(std::string& out, const char* key, const Map& map,
                   ValueFn value) {
  out += json_quote(key);
  out += ":{";
  bool first = true;
  for (const auto& [name, entry] : map) {
    if (!first) out.push_back(',');
    first = false;
    out += json_quote(name);
    out.push_back(':');
    out += value(entry);
  }
  out.push_back('}');
}

template <typename T, typename ValueFn>
std::string json_array(const std::vector<T>& values, ValueFn value) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += value(values[i]);
  }
  out.push_back(']');
  return out;
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  append_object(out, "counters", snapshot.counters,
                [](std::uint64_t v) { return std::to_string(v); });
  out.push_back(',');
  append_object(out, "gauges", snapshot.gauges,
                [](std::int64_t v) { return std::to_string(v); });
  out.push_back(',');
  append_object(
      out, "histograms", snapshot.histograms,
      [](const MetricsSnapshot::HistogramData& h) {
        std::string body = "{\"bounds\":";
        body += json_array(h.bounds,
                           [](double b) { return json_number(b); });
        body += ",\"counts\":";
        body += json_array(h.counts, [](std::uint64_t c) {
          return std::to_string(c);
        });
        body += ",\"count\":";
        body += std::to_string(h.count);
        body += ",\"sum\":";
        body += json_number(h.sum);
        body.push_back('}');
        return body;
      });
  out.push_back('}');
  return out;
}

// ---------------------------------------------------------------------------
// Strict recursive-descent parser over the exporter's own grammar.

namespace {

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  Status expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return invalid_argument(
          strings::cat("metrics json: expected '", c, "' at offset ", pos_));
    }
    ++pos_;
    return Status::ok();
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> string() {
    GL_RETURN_IF_ERROR(expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return invalid_argument("metrics json: truncated \\u escape");
            }
            unsigned code = 0;
            const auto [end, ec] = std::from_chars(
                text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
            if (ec != std::errc{} || end != text_.data() + pos_ + 4) {
              return invalid_argument("metrics json: bad \\u escape");
            }
            pos_ += 4;
            c = static_cast<char>(code);  // exporter only escapes < 0x20
            break;
          }
          default:
            return invalid_argument(
                strings::cat("metrics json: unknown escape \\", esc));
        }
      }
      out.push_back(c);
    }
    GL_RETURN_IF_ERROR(expect('"'));
    return out;
  }

  Result<double> number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    double value = 0;
    const auto [end, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc{} || end != text_.data() + pos_ || start == pos_) {
      return invalid_argument(
          strings::cat("metrics json: bad number at offset ", start));
    }
    return value;
  }

  Status at_end() {
    skip_ws();
    if (pos_ != text_.size()) {
      return invalid_argument(
          strings::cat("metrics json: trailing data at offset ", pos_));
    }
    return Status::ok();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Parses `"key":{"name":<value>,...}` via `value(reader)` per entry.
template <typename ValueFn>
Status parse_section(JsonReader& reader, const char* key, ValueFn value) {
  GL_ASSIGN_OR_RETURN(const std::string got, reader.string());
  if (got != key) {
    return invalid_argument(
        strings::cat("metrics json: expected section '", key, "', got '",
                     got, "'"));
  }
  GL_RETURN_IF_ERROR(reader.expect(':'));
  GL_RETURN_IF_ERROR(reader.expect('{'));
  if (reader.consume('}')) return Status::ok();
  do {
    GL_ASSIGN_OR_RETURN(const std::string name, reader.string());
    GL_RETURN_IF_ERROR(reader.expect(':'));
    GL_RETURN_IF_ERROR(value(name, reader));
  } while (reader.consume(','));
  return reader.expect('}');
}

Result<std::vector<double>> parse_number_array(JsonReader& reader) {
  GL_RETURN_IF_ERROR(reader.expect('['));
  std::vector<double> out;
  if (reader.consume(']')) return out;
  do {
    GL_ASSIGN_OR_RETURN(const double value, reader.number());
    out.push_back(value);
  } while (reader.consume(','));
  GL_RETURN_IF_ERROR(reader.expect(']'));
  return out;
}

}  // namespace

Result<MetricsSnapshot> parse_snapshot(std::string_view json) {
  JsonReader reader(json);
  MetricsSnapshot snap;
  GL_RETURN_IF_ERROR(reader.expect('{'));
  GL_RETURN_IF_ERROR(parse_section(
      reader, "counters", [&](const std::string& name, JsonReader& r) {
        GL_ASSIGN_OR_RETURN(const double value, r.number());
        snap.counters[name] = static_cast<std::uint64_t>(value);
        return Status::ok();
      }));
  GL_RETURN_IF_ERROR(reader.expect(','));
  GL_RETURN_IF_ERROR(parse_section(
      reader, "gauges", [&](const std::string& name, JsonReader& r) {
        GL_ASSIGN_OR_RETURN(const double value, r.number());
        snap.gauges[name] = static_cast<std::int64_t>(value);
        return Status::ok();
      }));
  GL_RETURN_IF_ERROR(reader.expect(','));
  GL_RETURN_IF_ERROR(parse_section(
      reader, "histograms", [&](const std::string& name, JsonReader& r) {
        MetricsSnapshot::HistogramData data;
        GL_RETURN_IF_ERROR(r.expect('{'));
        GL_ASSIGN_OR_RETURN(std::string key, r.string());
        if (key != "bounds") {
          return invalid_argument("metrics json: histogram missing bounds");
        }
        GL_RETURN_IF_ERROR(r.expect(':'));
        GL_ASSIGN_OR_RETURN(data.bounds, parse_number_array(r));
        GL_RETURN_IF_ERROR(r.expect(','));
        GL_ASSIGN_OR_RETURN(key, r.string());
        if (key != "counts") {
          return invalid_argument("metrics json: histogram missing counts");
        }
        GL_RETURN_IF_ERROR(r.expect(':'));
        GL_ASSIGN_OR_RETURN(const std::vector<double> counts,
                            parse_number_array(r));
        for (const double c : counts) {
          data.counts.push_back(static_cast<std::uint64_t>(c));
        }
        GL_RETURN_IF_ERROR(r.expect(','));
        GL_ASSIGN_OR_RETURN(key, r.string());
        if (key != "count") {
          return invalid_argument("metrics json: histogram missing count");
        }
        GL_RETURN_IF_ERROR(r.expect(':'));
        GL_ASSIGN_OR_RETURN(const double count, r.number());
        data.count = static_cast<std::uint64_t>(count);
        GL_RETURN_IF_ERROR(r.expect(','));
        GL_ASSIGN_OR_RETURN(key, r.string());
        if (key != "sum") {
          return invalid_argument("metrics json: histogram missing sum");
        }
        GL_RETURN_IF_ERROR(r.expect(':'));
        GL_ASSIGN_OR_RETURN(data.sum, r.number());
        GL_RETURN_IF_ERROR(r.expect('}'));
        snap.histograms[name] = std::move(data);
        return Status::ok();
      }));
  GL_RETURN_IF_ERROR(reader.expect('}'));
  GL_RETURN_IF_ERROR(reader.at_end());
  return snap;
}

Status write_text_file(const std::string& path, std::string_view content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return Status::ok();
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return io_error(strings::cat("cannot open ", path, " for writing"));
  }
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  out.close();
  if (!out) return io_error(strings::cat("write failed: ", path));
  return Status::ok();
}

Status probe_writable(const std::string& path) {
  if (path == "-") return Status::ok();
  std::ofstream out(path, std::ios::app);  // append: probe must not clobber
  if (!out) {
    return io_error(strings::cat("cannot open ", path, " for writing"));
  }
  return Status::ok();
}

Status write_json_file(const std::string& path,
                       const MetricsSnapshot& snapshot) {
  return write_text_file(path, to_json(snapshot) + "\n");
}

}  // namespace griddles::obs
