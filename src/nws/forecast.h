// Network Weather Service-style forecasting (Wolski et al.), reproduced
// for replica selection and copy-vs-buffer decisions.
//
// NWS's key idea: keep several simple predictors (last value, sliding
// median, sliding mean, EWMA) and, for each new forecast, trust whichever
// predictor has had the lowest error on the history so far.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace griddles::nws {

/// One time-stamped observation of a scalar (latency seconds, bytes/s...).
struct Sample {
  Duration at;
  double value;
};

/// Bounded history of samples with the NWS predictor ensemble.
class Series {
 public:
  explicit Series(std::size_t max_samples = 128)
      : max_samples_(max_samples) {}

  void add(double value, Duration at);

  std::size_t size() const;
  std::optional<double> last() const;

  /// Median of the most recent `window` samples.
  std::optional<double> median(std::size_t window) const;

  /// Mean of the most recent `window` samples.
  std::optional<double> mean(std::size_t window) const;

  /// Exponentially weighted moving average.
  std::optional<double> ewma(double alpha) const;

  /// Adaptive forecast: replays each predictor over the history, measures
  /// its mean squared one-step error, and returns the prediction of the
  /// best one. Falls back to last() with < 3 samples.
  std::optional<double> forecast() const;

  std::vector<Sample> samples() const;

 private:
  double predict_with(int predictor, std::size_t upto) const REQUIRES(mu_);

  const std::size_t max_samples_;
  // Leaf lock on the monitor's estimate path (Monitor::mu_ is held
  // while forecast() runs).
  mutable Mutex mu_ ACQUIRED_AFTER("Monitor::mu_");
  std::deque<Sample> history_ GUARDED_BY(mu_);
};

/// A latency/bandwidth estimate for one directed host pair.
struct LinkEstimate {
  double latency_seconds = 0;
  double bandwidth_bytes_per_sec = 0;
  /// How much the producer trusts these numbers: 1.0 for a fresh
  /// measurement, decaying toward the Monitor's configured floor while
  /// the sensor is silent. Purely advisory — consumers that need a hard
  /// signal get kUnavailable once the estimate has fully decayed.
  double confidence = 1.0;

  /// Predicted seconds to move `bytes` over this link (one message).
  double transfer_seconds(std::uint64_t bytes) const {
    const double bw = bandwidth_bytes_per_sec;
    return latency_seconds +
           (bw > 0 ? static_cast<double>(bytes) / bw : 0.0);
  }
};

/// Anything that can estimate the link from "here" to a destination host.
class LinkEstimator {
 public:
  virtual ~LinkEstimator() = default;
  virtual Result<LinkEstimate> estimate(const std::string& dst_host) = 0;
};

/// Chains a live estimator (NWS Monitor or QueryClient) with a static
/// fallback (the configured LinkModel numbers). When the primary cannot
/// answer — sensor outage, no samples yet, fully decayed staleness — the
/// fallback is consulted instead of surfacing the failure, and
/// `nws.fallback.static` counts the degradation. Both estimators must
/// outlive this object.
class FallbackLinkEstimator final : public LinkEstimator {
 public:
  FallbackLinkEstimator(LinkEstimator& primary, LinkEstimator& fallback)
      : primary_(primary), fallback_(fallback) {}

  Result<LinkEstimate> estimate(const std::string& dst_host) override;

 private:
  LinkEstimator& primary_;
  LinkEstimator& fallback_;
};

/// Fixed estimates, for tests and analytic benches.
class StaticLinkEstimator final : public LinkEstimator {
 public:
  void set(const std::string& dst_host, LinkEstimate estimate);
  Result<LinkEstimate> estimate(const std::string& dst_host) override;

 private:
  Mutex mu_;
  std::map<std::string, LinkEstimate> estimates_ GUARDED_BY(mu_);
};

}  // namespace griddles::nws
