#include "src/nws/monitor.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/fault/plan.h"
#include "src/obs/metrics.h"
#include "src/xdr/codec.h"

namespace griddles::nws {

namespace {
constexpr std::uint16_t method_id(Method m) {
  return static_cast<std::uint16_t>(m);
}
}  // namespace

Responder::Responder(net::Transport& transport, net::Endpoint bind)
    : rpc_(transport, std::move(bind)) {
  rpc_.register_method(
      method_id(Method::kEcho),
      [](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        return Bytes(request.begin(), request.end());
      });
  rpc_.register_method(
      method_id(Method::kSink),
      [](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Encoder enc;
        enc.put_u64(request.size());
        return std::move(enc).take();
      });
}

Monitor::Monitor(net::Transport& transport, Clock& clock, Options options)
    : transport_(transport), clock_(clock), options_(options) {}

Monitor::~Monitor() { stop(); }

void Monitor::add_target(const std::string& dst_host,
                         net::Endpoint responder) {
  MutexLock lock(mu_);
  auto target = std::make_shared<Target>();
  target->responder = std::move(responder);
  targets_[dst_host] = std::move(target);
}

Status Monitor::probe_once(const std::string& dst_host) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& probes_ok = registry.counter("nws.probe.ok");
  static obs::Counter& probes_failed = registry.counter("nws.probe.failed");
  static obs::Counter& outages = registry.counter("nws.sensor.outage");
  const Status status = probe_once_impl(dst_host);
  (status.is_ok() ? probes_ok : probes_failed).add();
  if (status.code() != ErrorCode::kNotFound) {
    MutexLock lock(mu_);
    if (const auto it = targets_.find(dst_host); it != targets_.end()) {
      if (status.is_ok()) {
        it->second->last_ok = clock_.now();
        it->second->failed_streak = 0;
      } else {
        ++it->second->failed_streak;
        if (it->second->failed_streak == options_.outage_after_failures) {
          outages.add();
        }
      }
    }
  }
  return status;
}

Status Monitor::probe_once_impl(const std::string& dst_host) {
  // Holding a shared_ptr keeps the target alive across the (slow, lock-free)
  // probe RPCs even if add_target concurrently replaces the map entry.
  std::shared_ptr<Target> target;
  {
    MutexLock lock(mu_);
    const auto it = targets_.find(dst_host);
    if (it == targets_.end()) {
      return not_found(strings::cat("nws: unknown target ", dst_host));
    }
    target = it->second;
    if (!target->client) {
      target->client =
          std::make_unique<net::RpcClient>(transport_, target->responder);
    }
  }

  // Injected sensor outage: `drop@nws:<dst>` fails one probe round,
  // `die@nws:<dst>` silences the sensor permanently.
  if (fault::Plan* plan = fault::armed(); plan != nullptr) {
    const fault::Decision verdict =
        plan->consult(fault::Site::kNws, dst_host);
    if (verdict.action == fault::Decision::Action::kFail ||
        verdict.action == fault::Decision::Action::kKill) {
      return unavailable(
          strings::cat("injected fault: nws probe ", dst_host));
    }
    if (verdict.action == fault::Decision::Action::kDelay) {
      fault::sleep_for_model(verdict.delay);
    }
  }

  // RTT: median of echo_count small echoes; latency = RTT / 2.
  std::vector<double> rtts;
  for (std::size_t i = 0; i < options_.echo_count; ++i) {
    const Duration start = clock_.now();
    const Bytes ping = to_bytes("nws-ping");
    GL_ASSIGN_OR_RETURN(const Bytes reply,
                        target->client->call(method_id(Method::kEcho), ping));
    if (reply.size() != ping.size()) {
      return internal_error("nws echo reply size mismatch");
    }
    rtts.push_back(to_seconds_d(clock_.now() - start));
  }
  std::nth_element(rtts.begin(), rtts.begin() + rtts.size() / 2, rtts.end());
  const double rtt = rtts[rtts.size() / 2];
  const double latency = rtt / 2.0;

  // Throughput: time a bulk transfer and subtract the latency estimate.
  Bytes bulk(options_.bulk_bytes, std::byte{0x5a});
  const Duration bulk_start = clock_.now();
  GL_ASSIGN_OR_RETURN(const Bytes ack,
                      target->client->call(method_id(Method::kSink), bulk));
  (void)ack;
  const double bulk_elapsed = to_seconds_d(clock_.now() - bulk_start);
  const double transfer = std::max(1e-9, bulk_elapsed - rtt);
  const double bandwidth = static_cast<double>(options_.bulk_bytes) / transfer;

  const Duration now = clock_.now();
  target->latency.add(latency, now);
  target->bandwidth.add(bandwidth, now);
  GL_LOG(kDebug, "nws probe ", transport_.local_host(), " -> ", dst_host,
         ": latency=", latency, "s bandwidth=", bandwidth, "B/s");
  return Status::ok();
}

Status Monitor::probe_all() {
  std::vector<std::string> hosts;
  {
    MutexLock lock(mu_);
    hosts.reserve(targets_.size());
    for (const auto& [host, target] : targets_) hosts.push_back(host);
  }
  Status first_error = Status::ok();
  for (const std::string& host : hosts) {
    if (const Status s = probe_once(host);
        !s.is_ok() && first_error.is_ok()) {
      first_error = s;
    }
  }
  return first_error;
}

void Monitor::start() {
  if (running_.exchange(true)) return;
  prober_ = std::thread([this] {
    while (running_) {
      if (const Status s = probe_all(); !s.is_ok()) {
        GL_LOG(kDebug, "nws probe round error: ", s);
      }
      // Sleep in small wall slices so stop() is responsive even under a
      // large model-time period.
      const WallClock::time_point wake =
          clock_.wall_deadline(options_.period);
      while (running_ && WallClock::now() < wake) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  });
}

void Monitor::stop() {
  if (!running_.exchange(false)) return;
  if (prober_.joinable()) prober_.join();
}

Result<LinkEstimate> Monitor::estimate(const std::string& dst_host) {
  MutexLock lock(mu_);
  const auto it = targets_.find(dst_host);
  if (it == targets_.end()) {
    return not_found(strings::cat("nws: unknown target ", dst_host));
  }
  const Target& target = *it->second;
  if (options_.outage_after_failures > 0 &&
      target.failed_streak >= options_.outage_after_failures) {
    return unavailable(strings::cat(
        "nws: sensor outage for ", dst_host, " (", target.failed_streak,
        " consecutive probe failures)"));
  }
  const auto latency = target.latency.forecast();
  const auto bandwidth = target.bandwidth.forecast();
  if (!latency || !bandwidth) {
    return unavailable(strings::cat("nws: no samples yet for ", dst_host));
  }
  // A silent sensor decays the forecast's confidence toward the floor;
  // a fully decayed estimate is withheld rather than served as truth.
  double confidence = 1.0;
  if (target.last_ok >= Duration::zero() &&
      options_.stale_after > Duration::zero()) {
    const Duration age = clock_.now() - target.last_ok;
    if (age > options_.stale_after) {
      const double horizon = to_seconds_d(options_.stale_after);
      const double overdue = to_seconds_d(age - options_.stale_after);
      confidence = options_.confidence_floor +
                   (1.0 - options_.confidence_floor) *
                       std::exp(-overdue / horizon);
      if (confidence <= options_.confidence_floor + 1e-9) {
        return unavailable(strings::cat(
            "nws: estimate for ", dst_host, " is stale (last probe ",
            to_seconds_d(age), "s ago)"));
      }
    }
  }
  return LinkEstimate{*latency, *bandwidth, confidence};
}

std::shared_ptr<const Series> Monitor::latency_series(
    const std::string& dst_host) const {
  MutexLock lock(mu_);
  const auto it = targets_.find(dst_host);
  if (it == targets_.end()) return nullptr;
  // Aliasing constructor: shares the Target's lifetime.
  return std::shared_ptr<const Series>(it->second, &it->second->latency);
}

std::shared_ptr<const Series> Monitor::bandwidth_series(
    const std::string& dst_host) const {
  MutexLock lock(mu_);
  const auto it = targets_.find(dst_host);
  if (it == targets_.end()) return nullptr;
  return std::shared_ptr<const Series>(it->second, &it->second->bandwidth);
}

QueryService::QueryService(Monitor& monitor, net::Transport& transport,
                           net::Endpoint bind)
    : monitor_(monitor), rpc_(transport, std::move(bind)) {
  rpc_.register_method(
      method_id(Method::kEstimate),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string dst_host, dec.string());
        GL_ASSIGN_OR_RETURN(const LinkEstimate estimate,
                            monitor_.estimate(dst_host));
        xdr::Encoder enc;
        enc.put_f64(estimate.latency_seconds);
        enc.put_f64(estimate.bandwidth_bytes_per_sec);
        return std::move(enc).take();
      });
}

QueryClient::QueryClient(net::Transport& transport, net::Endpoint service)
    : rpc_(transport, std::move(service)) {}

Result<LinkEstimate> QueryClient::estimate(const std::string& dst_host) {
  xdr::Encoder enc;
  enc.put_string(dst_host);
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc_.call(method_id(Method::kEstimate), enc.buffer()));
  xdr::Decoder dec(reply);
  LinkEstimate estimate;
  GL_ASSIGN_OR_RETURN(estimate.latency_seconds, dec.f64());
  GL_ASSIGN_OR_RETURN(estimate.bandwidth_bytes_per_sec, dec.f64());
  return estimate;
}

}  // namespace griddles::nws
