// Active network probing: the measurement half of the NWS substitute.
//
// Each testbed host runs a small Responder service. A Monitor on host A
// periodically dials host B's responder, measuring round-trip time with
// tiny echo messages and throughput with a bulk transfer. Because probes
// travel the same (possibly modelled) transports as real traffic, the
// monitor faithfully observes the simulated WAN.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <thread>

#include "src/common/clock.h"
#include "src/common/thread_annotations.h"
#include "src/net/rpc.h"
#include "src/nws/forecast.h"

namespace griddles::nws {

enum class Method : std::uint16_t {
  kEcho = 1,      // responder: reply with the payload
  kSink = 2,      // responder: swallow the payload, reply with its size
  kEstimate = 3,  // query service: forecast for a destination host
};

/// The per-host probe target service.
class Responder {
 public:
  Responder(net::Transport& transport, net::Endpoint bind);

  Status start() { return rpc_.start(); }
  void stop() { rpc_.stop(); }
  net::Endpoint endpoint() const { return rpc_.endpoint(); }

 private:
  net::RpcServer rpc_;
};

/// Probes a set of destination hosts and forecasts their link behaviour.
/// Implements LinkEstimator so replica selection can consume it directly.
class Monitor final : public LinkEstimator {
 public:
  struct Options {
    Duration period = std::chrono::seconds(10);  // model-time probe period
    std::size_t echo_count = 3;        // RTT samples per probe round
    std::size_t bulk_bytes = 256 * 1024;  // throughput probe payload

    /// Sensor-outage degradation (DESIGN.md "Control-plane resilience"):
    /// estimates older than `stale_after` (model time since the last
    /// successful probe) decay exponentially toward `confidence_floor`;
    /// once fully decayed — or after `outage_after_failures` consecutive
    /// probe failures — estimate() returns kUnavailable so consumers
    /// fall back to the static link model instead of garbage forecasts.
    Duration stale_after = std::chrono::seconds(60);
    double confidence_floor = 0.25;
    int outage_after_failures = 3;  // 0 disables the streak cutoff
  };

  /// `transport` provides the origin host identity; `clock` supplies the
  /// model timebase used for both timing and the probe period.
  Monitor(net::Transport& transport, Clock& clock, Options options);
  Monitor(net::Transport& transport, Clock& clock)
      : Monitor(transport, clock, Options{}) {}
  ~Monitor() override;

  /// Registers a destination (its responder endpoint).
  void add_target(const std::string& dst_host, net::Endpoint responder);

  /// Synchronously probes one destination, appending samples.
  Status probe_once(const std::string& dst_host);

  /// Probes every registered destination.
  Status probe_all();

  /// Starts the periodic background prober.
  void start();
  void stop();

  /// Forecasted link estimate to a destination (kNotFound before any
  /// successful probe).
  Result<LinkEstimate> estimate(const std::string& dst_host) override;

  /// Raw series access for tests and the NWS query service. Shares
  /// ownership with the target, so the series stays valid (and keeps
  /// accumulating samples) even if add_target replaces the entry.
  /// Null for unknown hosts.
  std::shared_ptr<const Series> latency_series(
      const std::string& dst_host) const;
  std::shared_ptr<const Series> bandwidth_series(
      const std::string& dst_host) const;

 private:
  Status probe_once_impl(const std::string& dst_host);

  struct Target {
    net::Endpoint responder;
    std::unique_ptr<net::RpcClient> client;
    Series latency{64};
    Series bandwidth{64};
    // Outage bookkeeping, written/read under the Monitor's mu_.
    Duration last_ok{-1};   // model time of the last successful probe
    int failed_streak = 0;  // consecutive probe failures
  };

  net::Transport& transport_;
  Clock& clock_;
  Options options_;
  // estimate() forecasts from per-target Series while holding the
  // monitor lock; Series code must never call back into the Monitor.
  mutable Mutex mu_ ACQUIRED_BEFORE("Series::mu_");
  // shared_ptr: probe_once works on a target for several RPC round trips
  // without the lock, and must survive add_target replacing the entry.
  std::map<std::string, std::shared_ptr<Target>> targets_ GUARDED_BY(mu_);
  std::thread prober_;
  std::atomic<bool> running_{false};
};

/// Serves a Monitor's estimates over RPC (so a scheduler on one machine
/// can ask about links it does not originate).
class QueryService {
 public:
  QueryService(Monitor& monitor, net::Transport& transport,
               net::Endpoint bind);

  Status start() { return rpc_.start(); }
  void stop() { rpc_.stop(); }
  net::Endpoint endpoint() const { return rpc_.endpoint(); }

 private:
  Monitor& monitor_;
  net::RpcServer rpc_;
};

/// LinkEstimator backed by a remote QueryService.
class QueryClient final : public LinkEstimator {
 public:
  QueryClient(net::Transport& transport, net::Endpoint service);
  Result<LinkEstimate> estimate(const std::string& dst_host) override;

 private:
  net::RpcClient rpc_;
};

}  // namespace griddles::nws
