#include "src/nws/forecast.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/obs/metrics.h"

namespace griddles::nws {

void Series::add(double value, Duration at) {
  MutexLock lock(mu_);
  history_.push_back(Sample{at, value});
  while (history_.size() > max_samples_) history_.pop_front();
}

std::size_t Series::size() const {
  MutexLock lock(mu_);
  return history_.size();
}

std::optional<double> Series::last() const {
  MutexLock lock(mu_);
  if (history_.empty()) return std::nullopt;
  return history_.back().value;
}

std::optional<double> Series::median(std::size_t window) const {
  MutexLock lock(mu_);
  if (history_.empty()) return std::nullopt;
  const std::size_t n = std::min(window, history_.size());
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = history_.size() - n; i < history_.size(); ++i) {
    values.push_back(history_[i].value);
  }
  std::nth_element(values.begin(), values.begin() + values.size() / 2,
                   values.end());
  return values[values.size() / 2];
}

std::optional<double> Series::mean(std::size_t window) const {
  MutexLock lock(mu_);
  if (history_.empty()) return std::nullopt;
  const std::size_t n = std::min(window, history_.size());
  double sum = 0;
  for (std::size_t i = history_.size() - n; i < history_.size(); ++i) {
    sum += history_[i].value;
  }
  return sum / static_cast<double>(n);
}

std::optional<double> Series::ewma(double alpha) const {
  MutexLock lock(mu_);
  if (history_.empty()) return std::nullopt;
  double value = history_.front().value;
  for (std::size_t i = 1; i < history_.size(); ++i) {
    value = alpha * history_[i].value + (1 - alpha) * value;
  }
  return value;
}

namespace {
constexpr int kNumPredictors = 4;
constexpr std::size_t kMedianWindow = 8;
constexpr std::size_t kMeanWindow = 8;
constexpr double kEwmaAlpha = 0.4;
}  // namespace

double Series::predict_with(int predictor, std::size_t upto) const {
  // Predicts sample [upto] from samples [0, upto). Caller holds mu_ and
  // guarantees upto >= 1.
  switch (predictor) {
    case 0:  // last value
      return history_[upto - 1].value;
    case 1: {  // sliding median
      const std::size_t n = std::min(kMedianWindow, upto);
      std::vector<double> values;
      values.reserve(n);
      for (std::size_t i = upto - n; i < upto; ++i) {
        values.push_back(history_[i].value);
      }
      std::nth_element(values.begin(), values.begin() + values.size() / 2,
                       values.end());
      return values[values.size() / 2];
    }
    case 2: {  // sliding mean
      const std::size_t n = std::min(kMeanWindow, upto);
      double sum = 0;
      for (std::size_t i = upto - n; i < upto; ++i) {
        sum += history_[i].value;
      }
      return sum / static_cast<double>(n);
    }
    default: {  // EWMA
      double value = history_[0].value;
      for (std::size_t i = 1; i < upto; ++i) {
        value = kEwmaAlpha * history_[i].value + (1 - kEwmaAlpha) * value;
      }
      return value;
    }
  }
}

std::optional<double> Series::forecast() const {
  MutexLock lock(mu_);
  if (history_.empty()) return std::nullopt;
  if (history_.size() < 3) return history_.back().value;

  // Replay each predictor over the history; pick the lowest-MSE one.
  double best_mse = 0;
  int best = 0;
  for (int p = 0; p < kNumPredictors; ++p) {
    double mse = 0;
    for (std::size_t i = 1; i < history_.size(); ++i) {
      const double err = predict_with(p, i) - history_[i].value;
      mse += err * err;
    }
    if (p == 0 || mse < best_mse) {
      best_mse = mse;
      best = p;
    }
  }
  return predict_with(best, history_.size());
}

std::vector<Sample> Series::samples() const {
  MutexLock lock(mu_);
  return {history_.begin(), history_.end()};
}

Result<LinkEstimate> FallbackLinkEstimator::estimate(
    const std::string& dst_host) {
  auto primary = primary_.estimate(dst_host);
  if (primary.is_ok()) return primary;
  static obs::Counter& fallbacks =
      obs::MetricsRegistry::global().counter("nws.fallback.static");
  fallbacks.add();
  auto fallback = fallback_.estimate(dst_host);
  // If even the static model has no answer, the primary's error (outage,
  // staleness) is the one worth reporting.
  if (!fallback.is_ok()) return primary;
  return fallback;
}

void StaticLinkEstimator::set(const std::string& dst_host,
                              LinkEstimate estimate) {
  MutexLock lock(mu_);
  estimates_[dst_host] = estimate;
}

Result<LinkEstimate> StaticLinkEstimator::estimate(
    const std::string& dst_host) {
  MutexLock lock(mu_);
  const auto it = estimates_.find(dst_host);
  if (it == estimates_.end()) {
    return not_found(strings::cat("no link estimate for ", dst_host));
  }
  return it->second;
}

}  // namespace griddles::nws
