#include "src/multicast/dist_tree.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/common/strings.h"
#include "src/obs/metrics.h"

namespace griddles::multicast {

namespace {
obs::Counter& uniform_fallback_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("multicast.plan.uniform");
  return counter;
}

/// Memoizing edge-cost oracle over the PairEstimator. A pair the
/// estimator cannot price gets a uniform cost of 1.0 — worse than any
/// real same-planet link estimate would be relative to its peers, but
/// still a valid total order, so planning proceeds.
class EdgeCosts {
 public:
  EdgeCosts(const PairEstimator& estimator, std::uint64_t reference_bytes)
      : estimator_(estimator), reference_bytes_(reference_bytes) {}

  double cost(const std::string& src, const std::string& dst) {
    const auto key = std::make_pair(src, dst);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    double seconds = 1.0;
    if (estimator_) {
      const auto estimate = estimator_(src, dst);
      if (estimate.is_ok()) {
        seconds = estimate->transfer_seconds(reference_bytes_);
      } else {
        degraded_ = true;
      }
    } else {
      degraded_ = true;
    }
    cache_.emplace(key, seconds);
    return seconds;
  }

  bool degraded() const { return degraded_; }

 private:
  const PairEstimator& estimator_;
  const std::uint64_t reference_bytes_;
  std::map<std::pair<std::string, std::string>, double> cache_;
  bool degraded_ = false;
};
}  // namespace

std::vector<std::string> DistTree::relay_hosts() const {
  std::vector<std::string> hosts;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (!nodes[i].children.empty()) hosts.push_back(nodes[i].host);
  }
  return hosts;
}

Result<DistTree> plan_tree(const std::string& source,
                           const std::vector<std::string>& destinations,
                           const PairEstimator& estimator,
                           const TreeOptions& options) {
  if (source.empty()) {
    return invalid_argument("multicast: source host must be non-empty");
  }
  if (options.max_fanout < 1 || options.root_fanout < 1) {
    return invalid_argument(
        strings::cat("multicast: fanout must be >= 1 (max_fanout=",
                     options.max_fanout, ", root_fanout=",
                     options.root_fanout, ")"));
  }
  std::set<std::string> seen;
  for (const std::string& destination : destinations) {
    if (destination == source) {
      return invalid_argument(strings::cat(
          "multicast: source ", source, " listed as a destination"));
    }
    if (!seen.insert(destination).second) {
      return invalid_argument(strings::cat(
          "multicast: duplicate destination ", destination));
    }
  }

  DistTree tree;
  tree.nodes.push_back(TreeNode{source, -1, {}, 0, 0.0});

  EdgeCosts costs(estimator, options.reference_bytes);
  std::vector<std::string> unplaced = destinations;
  while (!unplaced.empty()) {
    // Cheapest insertion: minimize (parent path cost + edge cost) over
    // every (attached node with spare fanout) x (unplaced destination).
    int best_parent = -1;
    std::size_t best_dest = 0;
    double best_cost = 0;
    for (std::size_t d = 0; d < unplaced.size(); ++d) {
      for (std::size_t p = 0; p < tree.nodes.size(); ++p) {
        const TreeNode& parent = tree.nodes[p];
        const int fanout_limit =
            p == 0 ? options.root_fanout : options.max_fanout;
        if (static_cast<int>(parent.children.size()) >= fanout_limit) {
          continue;
        }
        const double candidate =
            parent.path_cost + costs.cost(parent.host, unplaced[d]);
        // Deterministic tie-break: lower cost, then destination name,
        // then lower parent index.
        const bool better =
            best_parent < 0 || candidate < best_cost ||
            (candidate == best_cost &&
             (unplaced[d] < unplaced[best_dest] ||
              (unplaced[d] == unplaced[best_dest] &&
               static_cast<std::size_t>(best_parent) > p)));
        if (better) {
          best_parent = static_cast<int>(p);
          best_dest = d;
          best_cost = candidate;
        }
      }
    }
    if (best_parent < 0) {
      // Every attached node is at its fanout limit. With fanout >= 1 a
      // fresh leaf always has capacity, so this is unreachable — keep a
      // typed error rather than an invariant crash.
      return internal_error("multicast: no parent with spare fanout");
    }
    TreeNode node;
    node.host = unplaced[best_dest];
    node.parent = best_parent;
    node.depth = tree.nodes[static_cast<std::size_t>(best_parent)].depth + 1;
    node.path_cost = best_cost;
    const int index = static_cast<int>(tree.nodes.size());
    tree.nodes[static_cast<std::size_t>(best_parent)].children.push_back(
        index);
    tree.depth = std::max(tree.depth, node.depth);
    tree.nodes.push_back(std::move(node));
    unplaced.erase(unplaced.begin() +
                   static_cast<std::ptrdiff_t>(best_dest));
  }
  tree.uniform_fallback = costs.degraded();
  if (tree.uniform_fallback) uniform_fallback_counter().add();
  return tree;
}

}  // namespace griddles::multicast
