// Block-level relay protocol for multicast distribution (DESIGN.md §12).
//
// A relay request carries the receiving node's own subtree in-band: its
// local write target (file path or buffer channel), its endpoint, and
// the full subtrees of its children. The receiver writes the block once
// locally and forwards it to each child — no relay ever needs prior
// per-transfer state, so any remote::FileServer or GridBufferServer can
// be recruited as an interior relay of any transfer.
//
// Fault tolerance is parent-side adoption: when a forward to child C
// fails, the parent re-parents C's subtree onto itself for this block —
// it sends the block directly to C's children (their subtrees are right
// there in the request) and reports C dead up the tree. The response of
// every relay hop is the list of dead hosts its subtree encountered, so
// the source learns exactly which destinations the tree could not serve
// and can fall back to a direct transfer for those.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/net/rpc.h"
#include "src/xdr/codec.h"

namespace griddles::multicast {

/// One node of the distribution tree as shipped on the wire. `path` is
/// the node-local write target: a server-relative file path for staged
/// copies, a channel name for Grid Buffer broadcast. `readers` is the
/// node-local expected reader count for buffer channels (0 = keep the
/// carried config's value; unused by file relays).
struct RelayNode {
  std::string host;
  std::string endpoint;  // serialized net::Endpoint
  std::string path;
  std::uint32_t readers = 0;
  std::vector<RelayNode> children;

  /// Nodes in this subtree including this one.
  std::size_t subtree_size() const;
};

/// Trees deeper than this fail to decode — a corrupted length prefix
/// must not recurse unboundedly. Real trees are O(log N) deep.
inline constexpr int kMaxRelayDepth = 64;

void encode_node(xdr::Encoder& enc, const RelayNode& node);
Result<RelayNode> decode_node(xdr::Decoder& dec, int depth = 0);

/// The dead-host list every relay response carries.
void encode_dead_hosts(xdr::Encoder& enc,
                       const std::vector<std::string>& dead);
Result<std::vector<std::string>> decode_dead_hosts(xdr::Decoder& dec);

/// A small cache of RPC clients keyed by endpoint, shared by every
/// forward a relay makes. RpcClient serializes calls internally, so one
/// client per child endpoint mirrors one connection per tree edge.
class RelayForwarder {
 public:
  explicit RelayForwarder(net::Transport& transport)
      : transport_(transport) {}

  /// Calls `method` on the node's endpoint with `request`.
  Result<Bytes> call(const RelayNode& node, std::uint16_t method,
                     ByteSpan request);

 private:
  net::Transport& transport_;
  Mutex mu_;
  std::map<std::string, std::shared_ptr<net::RpcClient>> clients_
      GUARDED_BY(mu_);
};

/// Builds the request payload delivering one block to `node`'s subtree.
using RelayPayloadFn = std::function<Bytes(const RelayNode& node)>;

/// Delivers one block to every subtree in `children`: one call per
/// child, each failure adopted (the dead child's own children get direct
/// calls from here, recursively). Appends every dead host seen — locally
/// or reported by a child's response — to `dead`. Never fails: total
/// subtree loss just means every host lands in `dead`.
void relay_block(RelayForwarder& forwarder,
                 const std::vector<RelayNode>& children,
                 std::uint16_t method, const RelayPayloadFn& payload,
                 std::vector<std::string>& dead);

/// Consults the armed fault plan at the relay site for `host`, with the
/// relay's cumulative forwarded bytes as the `after=` high-water mark.
/// Non-OK (kUnavailable) when an injected `die@relay:<host>` says this
/// relay is dead — the caller returns it so the parent adopts.
Status consult_relay_fault(const std::string& host,
                           std::uint64_t cumulative_bytes);

}  // namespace griddles::multicast
