// DistTree: bounded-fanout spanning-tree planning for multicast
// distribution (GridFTP multicast style — see DESIGN.md §12).
//
// Staging one file to N consumers as N point-to-point copies serializes
// on the producer's uplink. The fix is a distribution tree: the source
// sends each block to a handful of first-hop relays, which write it
// locally and forward it to their children, so the source-side bytes stay
// near-flat in N while the deep fan-out happens on the relays' links.
//
// The planner is greedy cheapest-insertion over NWS-style link estimates:
// attach the unplaced destination whose (path cost to parent + edge cost)
// is smallest among parents with spare fanout. Link costs come from a
// PairEstimator — live NWS forecasts when sensors are up, the static
// testbed LinkModel when they are out; when even that fails for a pair,
// the planner degrades to uniform edge costs rather than erroring, so a
// dead estimator can only make the tree slower, never the copy fail.
//
// Determinism: ties break on destination name then parent index, and the
// estimator is consulted once per directed pair (memoized), so the same
// inputs always produce byte-identical trees — fault schedules keyed on
// relay hosts replay exactly.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/nws/forecast.h"

namespace griddles::multicast {

/// Estimates the link from `src` to `dst`. Errors are tolerated per pair
/// (uniform-cost fallback); the planner never fails on estimator trouble.
using PairEstimator = std::function<Result<nws::LinkEstimate>(
    const std::string& src, const std::string& dst)>;

struct TreeOptions {
  /// Children per interior (relay) node.
  int max_fanout = 4;
  /// Children of the source itself — the knob that bounds source-side
  /// bytes to root_fanout * file size regardless of N.
  int root_fanout = 2;
  /// Payload the cost model prices each edge with.
  std::uint64_t reference_bytes = 8u << 20;
};

struct TreeNode {
  std::string host;
  int parent = -1;  // index into DistTree::nodes; -1 only for the source
  std::vector<int> children;
  int depth = 0;          // source = 0
  double path_cost = 0;   // modelled seconds source -> this node
};

struct DistTree {
  std::vector<TreeNode> nodes;  // nodes[0] is the source
  int depth = 0;                // max node depth
  bool uniform_fallback = false;  // at least one pair lacked an estimate

  const TreeNode& source() const { return nodes.front(); }

  /// Hosts with children — the interior relays a fault plan can target.
  std::vector<std::string> relay_hosts() const;
};

/// Plans the bounded-fanout tree. Destinations must be unique and must
/// not contain the source (kInvalidArgument otherwise). An empty
/// destination list yields a tree of just the source.
Result<DistTree> plan_tree(const std::string& source,
                           const std::vector<std::string>& destinations,
                           const PairEstimator& estimator,
                           const TreeOptions& options);

}  // namespace griddles::multicast
