#include "src/multicast/relay.h"

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/fault/plan.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace griddles::multicast {

namespace {
obs::Counter& reparents_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("multicast.reparents");
  return counter;
}

obs::Counter& relay_dead_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("multicast.relay.dead");
  return counter;
}

void collect_subtree_hosts(const RelayNode& node,
                           std::vector<std::string>& hosts) {
  hosts.push_back(node.host);
  for (const RelayNode& child : node.children) {
    collect_subtree_hosts(child, hosts);
  }
}
}  // namespace

std::size_t RelayNode::subtree_size() const {
  std::size_t size = 1;
  for (const RelayNode& child : children) size += child.subtree_size();
  return size;
}

void encode_node(xdr::Encoder& enc, const RelayNode& node) {
  enc.put_string(node.host);
  enc.put_string(node.endpoint);
  enc.put_string(node.path);
  enc.put_u32(node.readers);
  enc.put_vector(node.children, [](xdr::Encoder& e, const RelayNode& child) {
    encode_node(e, child);
  });
}

Result<RelayNode> decode_node(xdr::Decoder& dec, int depth) {
  if (depth > kMaxRelayDepth) {
    return invalid_argument("relay tree exceeds maximum depth");
  }
  RelayNode node;
  GL_ASSIGN_OR_RETURN(node.host, dec.string());
  GL_ASSIGN_OR_RETURN(node.endpoint, dec.string());
  GL_ASSIGN_OR_RETURN(node.path, dec.string());
  GL_ASSIGN_OR_RETURN(node.readers, dec.u32());
  GL_ASSIGN_OR_RETURN(
      node.children,
      dec.vector<RelayNode>([depth](xdr::Decoder& d) {
        return decode_node(d, depth + 1);
      }));
  return node;
}

void encode_dead_hosts(xdr::Encoder& enc,
                       const std::vector<std::string>& dead) {
  enc.put_vector(dead, [](xdr::Encoder& e, const std::string& host) {
    e.put_string(host);
  });
}

Result<std::vector<std::string>> decode_dead_hosts(xdr::Decoder& dec) {
  return dec.vector<std::string>(
      [](xdr::Decoder& d) { return d.string(); });
}

Result<Bytes> RelayForwarder::call(const RelayNode& node,
                                   std::uint16_t method, ByteSpan request) {
  std::shared_ptr<net::RpcClient> client;
  {
    MutexLock lock(mu_);
    const auto it = clients_.find(node.endpoint);
    if (it != clients_.end()) client = it->second;
  }
  if (!client) {
    GL_ASSIGN_OR_RETURN(const net::Endpoint endpoint,
                        net::Endpoint::parse(node.endpoint));
    auto fresh = std::make_shared<net::RpcClient>(transport_, endpoint);
    MutexLock lock(mu_);
    // First inserter wins a race; both clients work either way.
    client = clients_.emplace(node.endpoint, std::move(fresh)).first->second;
  }
  return client->call(method, request);
}

void relay_block(RelayForwarder& forwarder,
                 const std::vector<RelayNode>& children,
                 std::uint16_t method, const RelayPayloadFn& payload,
                 std::vector<std::string>& dead) {
  for (const RelayNode& child : children) {
    const Bytes request = payload(child);
    const Result<Bytes> reply = forwarder.call(child, method, request);
    if (reply.is_ok()) {
      xdr::Decoder dec(*reply);
      auto reported = decode_dead_hosts(dec);
      if (reported.is_ok()) {
        dead.insert(dead.end(), reported->begin(), reported->end());
      } else {
        // A garbled response means the subtree's state is unknown; mark
        // every host in it missed so the source repairs conservatively.
        GL_LOG(kWarn, "relay response from ", child.host, " undecodable (",
               reported.status(), "); assuming subtree missed");
        collect_subtree_hosts(child, dead);
      }
      continue;
    }
    // Child unreachable (or an injected die@relay fired there): adopt its
    // subtree for this block — forward straight to the grandchildren —
    // and report the child dead so the source repairs its local file.
    relay_dead_counter().add();
    reparents_counter().add();
    obs::Span reparent_span(obs::SpanKind::kRecovery,
                            strings::cat("multicast.reparent:", child.host));
    reparent_span.add_attr("error", reply.status().message());
    reparent_span.add_attr("adopted", strings::cat(child.children.size()));
    GL_LOG(kWarn, "relay ", child.host, " failed (", reply.status(),
           "); re-parenting ", child.children.size(), " subtree(s)");
    dead.push_back(child.host);
    relay_block(forwarder, child.children, method, payload, dead);
  }
}

Status consult_relay_fault(const std::string& host,
                           std::uint64_t cumulative_bytes) {
  fault::Plan* plan = fault::armed();
  if (plan == nullptr) return Status::ok();
  const fault::Decision verdict =
      plan->consult(fault::Site::kRelay, host, cumulative_bytes);
  switch (verdict.action) {
    case fault::Decision::Action::kNone:
      return Status::ok();
    case fault::Decision::Action::kDelay:
      fault::sleep_for_model(verdict.delay);
      return Status::ok();
    default:
      return unavailable(strings::cat("injected fault: relay ", host));
  }
}

}  // namespace griddles::multicast
