#include "src/workflow/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/obs/metrics.h"
#include "src/xdr/codec.h"

namespace griddles::workflow {

namespace {
constexpr std::uint32_t kMagic = 0x474C434BU;  // 'GLCK'
constexpr std::uint8_t kStageKind = 1;
constexpr std::uint8_t kCopyKind = 2;

Status errno_status(const char* op, const std::string& path) {
  return io_error(
      strings::cat(op, " ", path, ": ", strings::errno_message(errno)));
}

Bytes encode_stage(const StageRecord& record) {
  xdr::Encoder enc;
  enc.put_string(record.name);
  enc.put_string(record.machine);
  enc.put_f64(record.started_s);
  enc.put_f64(record.finished_s);
  enc.put_u64(record.bytes_read);
  enc.put_u64(record.bytes_written);
  enc.put_vector(record.outputs,
                 [](xdr::Encoder& e,
                    const std::pair<std::string, std::uint64_t>& output) {
                   e.put_string(output.first);
                   e.put_u64(output.second);
                 });
  return std::move(enc).take();
}

Result<StageRecord> decode_stage(ByteSpan payload) {
  xdr::Decoder dec(payload);
  StageRecord record;
  GL_ASSIGN_OR_RETURN(record.name, dec.string());
  GL_ASSIGN_OR_RETURN(record.machine, dec.string());
  GL_ASSIGN_OR_RETURN(record.started_s, dec.f64());
  GL_ASSIGN_OR_RETURN(record.finished_s, dec.f64());
  GL_ASSIGN_OR_RETURN(record.bytes_read, dec.u64());
  GL_ASSIGN_OR_RETURN(record.bytes_written, dec.u64());
  GL_ASSIGN_OR_RETURN(
      record.outputs,
      (dec.vector<std::pair<std::string, std::uint64_t>>(
          [](xdr::Decoder& d)
              -> Result<std::pair<std::string, std::uint64_t>> {
            GL_ASSIGN_OR_RETURN(std::string path, d.string());
            GL_ASSIGN_OR_RETURN(const std::uint64_t hash, d.u64());
            return std::make_pair(std::move(path), hash);
          })));
  return record;
}

Bytes encode_copy(const CopyRecord& record) {
  xdr::Encoder enc;
  enc.put_string(record.path);
  enc.put_string(record.from);
  enc.put_string(record.to);
  enc.put_f64(record.finished_s);
  enc.put_f64(record.seconds);
  enc.put_u64(record.dest_hash);
  return std::move(enc).take();
}

Result<CopyRecord> decode_copy(ByteSpan payload) {
  xdr::Decoder dec(payload);
  CopyRecord record;
  GL_ASSIGN_OR_RETURN(record.path, dec.string());
  GL_ASSIGN_OR_RETURN(record.from, dec.string());
  GL_ASSIGN_OR_RETURN(record.to, dec.string());
  GL_ASSIGN_OR_RETURN(record.finished_s, dec.f64());
  GL_ASSIGN_OR_RETURN(record.seconds, dec.f64());
  GL_ASSIGN_OR_RETURN(record.dest_hash, dec.u64());
  return record;
}
}  // namespace

Result<std::uint64_t> hash_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return errno_status("open", path);
  std::uint64_t hash = kFnv1aSeed;
  Bytes buffer(1u << 20);
  while (true) {
    const ssize_t n = ::read(fd, buffer.data(), buffer.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return errno_status("read", path);
    }
    if (n == 0) break;
    hash = fnv1a_update(hash, {buffer.data(), static_cast<std::size_t>(n)});
  }
  ::close(fd);
  return hash;
}

Result<std::unique_ptr<CheckpointLog>> CheckpointLog::open(
    const std::string& path) {
  const WallClock::time_point load_start = WallClock::now();
  {
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return errno_status("open", path);
  auto log = std::unique_ptr<CheckpointLog>(new CheckpointLog(fd, path));

  // Replay: read the whole journal and decode record frames until the
  // first torn or corrupt one (a crash mid-append leaves at most one).
  Bytes contents;
  {
    Bytes buffer(1u << 16);
    while (true) {
      const ssize_t n = ::read(fd, buffer.data(), buffer.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return errno_status("read", path);
      }
      if (n == 0) break;
      contents.insert(contents.end(), buffer.begin(), buffer.begin() + n);
    }
  }
  std::uint64_t valid_end = 0;
  xdr::Decoder dec(contents);
  while (dec.remaining() > 0) {
    const auto magic = dec.u32();
    if (!magic.is_ok() || *magic != kMagic) break;
    const auto kind = dec.u8();
    if (!kind.is_ok()) break;
    const auto payload = dec.bytes();
    if (!payload.is_ok()) break;
    const auto crc = dec.u64();
    if (!crc.is_ok() || *crc != fnv1a(*payload)) break;
    if (*kind == kStageKind) {
      const auto record = decode_stage(*payload);
      if (!record.is_ok()) break;
      log->stages_.push_back(*record);
    } else if (*kind == kCopyKind) {
      const auto record = decode_copy(*payload);
      if (!record.is_ok()) break;
      log->copies_.push_back(*record);
    } else {
      break;  // unknown kind: treat like a torn tail
    }
    ++log->replayed_;
    valid_end = contents.size() - dec.remaining();
  }
  if (valid_end < contents.size()) {
    GL_LOG(kWarn, "checkpoint ", path, ": dropping torn tail (",
           contents.size() - valid_end, " bytes after record ",
           log->replayed_, ")");
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
      return errno_status("ftruncate", path);
    }
  }
  if (::lseek(fd, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
    return errno_status("lseek", path);
  }

  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& replayed =
      registry.counter("checkpoint.records.replayed");
  static obs::Histogram& replay_s = registry.histogram(
      "checkpoint.replay_s", obs::exponential_bounds(1e-4, 10.0, 7));
  replayed.add(log->replayed_);
  replay_s.observe(
      to_seconds_d(WallClock::now() - load_start));
  return log;
}

CheckpointLog::~CheckpointLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status CheckpointLog::append(std::uint8_t kind, const Bytes& payload) {
  xdr::Encoder enc;
  enc.put_u32(kMagic);
  enc.put_u8(kind);
  enc.put_bytes(payload);
  enc.put_u64(fnv1a(payload));
  const Bytes& frame = enc.buffer();
  std::size_t put = 0;
  while (put < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + put, frame.size() - put);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("write", path_);
    }
    put += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) return errno_status("fsync", path_);
  return Status::ok();
}

Status CheckpointLog::append_stage(const StageRecord& record) {
  GL_RETURN_IF_ERROR(append(kStageKind, encode_stage(record)));
  stages_.push_back(record);
  return Status::ok();
}

Status CheckpointLog::append_copy(const CopyRecord& record) {
  GL_RETURN_IF_ERROR(append(kCopyKind, encode_copy(record)));
  copies_.push_back(record);
  return Status::ok();
}

const StageRecord* CheckpointLog::stage(const std::string& name) const {
  const StageRecord* found = nullptr;
  for (const StageRecord& record : stages_) {
    if (record.name == name) found = &record;
  }
  return found;
}

const CopyRecord* CheckpointLog::copy(const std::string& path,
                                      const std::string& from,
                                      const std::string& to) const {
  const CopyRecord* found = nullptr;
  for (const CopyRecord& record : copies_) {
    if (record.path == path && record.from == from && record.to == to) {
      found = &record;
    }
  }
  return found;
}

}  // namespace griddles::workflow
