#include "src/workflow/runner.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "src/common/deadline.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/core/tailing_client.h"
#include "src/gns/antientropy.h"
#include "src/gns/replicated.h"
#include "src/gns/service.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/remote/copier.h"
#include "src/vfs/local_client.h"
#include "src/workflow/checkpoint.h"

namespace griddles::workflow {

namespace {
std::string canonical_in(const std::string& dir, const std::string& path) {
  return (std::filesystem::path(dir) / path).lexically_normal().string();
}

/// Failures worth a stage re-run: transient infrastructure trouble, a
/// verifiably incomplete stream (a Grid Buffer writer death surfaces as
/// kDataLoss once the reader has drained the cache file), or a shed
/// request (kResourceExhausted) — by the time the stage re-runs in
/// staged-file mode the burst has passed. Deliberately NOT retried
/// inline at the RPC layer: the stage re-run is the storm-safe path.
bool recoverable(ErrorCode code) {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kTimeout ||
         code == ErrorCode::kDataLoss ||
         code == ErrorCode::kResourceExhausted;
}

obs::Counter& stage_reruns_counter() {
  static obs::Counter& reruns =
      obs::MetricsRegistry::global().counter("stage.reruns");
  return reruns;
}

obs::Counter& checkpoint_stage_skipped_counter() {
  static obs::Counter& skipped =
      obs::MetricsRegistry::global().counter("checkpoint.stage.skipped");
  return skipped;
}

obs::Counter& checkpoint_copy_skipped_counter() {
  static obs::Counter& skipped =
      obs::MetricsRegistry::global().counter("checkpoint.copy.skipped");
  return skipped;
}

/// The journal record for a finished stage: result accounting plus the
/// hash of every output file.
Result<StageRecord> make_stage_record(
    const TaskSpec& task, const TaskResult& result,
    const std::map<std::string, std::string>& dirs) {
  StageRecord record;
  record.name = result.name;
  record.machine = result.machine;
  record.started_s = result.started_s;
  record.finished_s = result.finished_s;
  record.bytes_read = result.bytes_read;
  record.bytes_written = result.bytes_written;
  for (const apps::StreamSpec& out : task.kernel.outputs) {
    GL_ASSIGN_OR_RETURN(
        const std::uint64_t hash,
        hash_file(canonical_in(dirs.at(task.machine), out.path)));
    record.outputs.emplace_back(out.path, hash);
  }
  return record;
}

/// True when every output the record journaled still exists with the
/// recorded hash — the stage's work survived the crash intact.
bool stage_outputs_valid(const StageRecord& record,
                         const std::map<std::string, std::string>& dirs) {
  const auto dir = dirs.find(record.machine);
  if (dir == dirs.end()) return false;
  for (const auto& [path, hash] : record.outputs) {
    const auto on_disk = hash_file(canonical_in(dir->second, path));
    if (!on_disk.is_ok() || *on_disk != hash) return false;
  }
  return true;
}

TaskResult task_result_from(const StageRecord& record) {
  TaskResult result;
  result.name = record.name;
  result.machine = record.machine;
  result.started_s = record.started_s;
  result.finished_s = record.finished_s;
  result.bytes_read = record.bytes_read;
  result.bytes_written = record.bytes_written;
  return result;
}

/// Link costs for multicast tree planning from the static testbed model.
/// Hosts outside the paper testbed simply fail per pair, which degrades
/// the planner to uniform costs — never fails the copy.
multicast::PairEstimator testbed_pair_estimator() {
  return [](const std::string& src,
            const std::string& dst) -> Result<nws::LinkEstimate> {
    GL_ASSIGN_OR_RETURN(const testbed::MachineSpec a,
                        testbed::find_machine(src));
    GL_ASSIGN_OR_RETURN(const testbed::MachineSpec b,
                        testbed::find_machine(dst));
    const testbed::LinkSpec link = testbed::link_between(a, b);
    nws::LinkEstimate estimate;
    estimate.latency_seconds = link.latency_s;
    estimate.bandwidth_bytes_per_sec = link.mb_per_s * 1e6;
    return estimate;
  };
}

/// Writes an external input file with the deterministic stream content.
Status materialize_stream(const std::string& full_path,
                          const std::string& open_name,
                          std::uint64_t bytes) {
  GL_ASSIGN_OR_RETURN(auto file, vfs::LocalFileClient::open(
                                     full_path, vfs::OpenFlags::output()));
  Bytes chunk(64 * 1024);
  std::uint64_t offset = 0;
  while (offset < bytes) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk.size(), bytes - offset));
    apps::fill_stream(open_name, offset, {chunk.data(), want});
    GL_RETURN_IF_ERROR(vfs::write_all(*file, {chunk.data(), want}));
    offset += want;
  }
  return file->close();
}
}  // namespace

std::string_view coupling_mode_name(CouplingMode mode) noexcept {
  switch (mode) {
    case CouplingMode::kSequentialFiles: return "sequential-files";
    case CouplingMode::kConcurrentFiles: return "concurrent-files";
    case CouplingMode::kGridBuffers: return "grid-buffers";
  }
  return "?";
}

const TaskResult* WorkflowReport::task(const std::string& name) const {
  for (const TaskResult& result : tasks) {
    if (result.name == name) return &result;
  }
  return nullptr;
}

struct WorkflowRunner::RunContext {
  std::unique_ptr<net::Transport> service_transport;
  // Multi-master GNS: `gns_replicas` nodes, each owning its own store
  // copy, sharded by rendezvous hash and converged by anti-entropy;
  // each task fronts them with a ReplicatedNameService. Names
  // ("gns-0"...) are the fault site keys.
  std::unique_ptr<gns::GnsCluster> gns;
  std::vector<std::pair<std::string, net::Endpoint>> gns_endpoints;

  std::unique_ptr<CheckpointLog> checkpoint;
  bool resuming = false;  // checkpoint replayed at least one record

  std::map<std::string, std::string> dirs;
  std::map<std::string, std::unique_ptr<net::Transport>> server_transports;
  std::map<std::string, std::unique_ptr<remote::FileServer>> file_servers;
  std::map<std::string, std::unique_ptr<gridbuffer::GridBufferServer>>
      buffer_servers;
  Duration start{0};
  std::string run_tag;
};

Result<WorkflowReport> WorkflowRunner::run(const WorkflowSpec& spec,
                                           const Options& options) {
  GL_ASSIGN_OR_RETURN(const std::vector<Edge> edges, infer_edges(spec));
  GL_ASSIGN_OR_RETURN(const std::vector<std::size_t> order,
                      topological_order(spec, edges));
  if (spec.tasks.empty()) {
    return invalid_argument("workflow has no tasks");
  }

  RunContext ctx;
  // A unique tag per run isolates GNS/service endpoints and channels.
  // lint: not-a-metric (run-id)
  static std::atomic<std::uint64_t> run_counter{0};
  ctx.run_tag = strings::cat(spec.name, "-", run_counter.fetch_add(1));

  // The root of this run's trace: everything below — stages, opens,
  // copies, RPC hops, retries — parents back to this span.
  obs::Span workflow_span(obs::SpanKind::kWorkflow,
                          strings::cat("workflow:", spec.name));
  workflow_span.add_attr("mode", coupling_mode_name(options.mode));
  workflow_span.add_attr("tasks", strings::cat(spec.tasks.size()));

  // The run's end-to-end budget: model seconds anchored to the wall
  // clock here, then carried across every RPC hop below this frame.
  std::optional<WallClock::time_point> run_deadline;
  if (options.deadline_s > 0) {
    run_deadline = testbed_.clock().wall_deadline(
        from_seconds_d(options.deadline_s));
  }
  ScopedDeadline deadline_scope(run_deadline);

  for (const TaskSpec& task : spec.tasks) {
    if (!ctx.dirs.contains(task.machine)) {
      GL_ASSIGN_OR_RETURN(ctx.dirs[task.machine],
                          testbed_.machine_dir(task.machine));
    }
  }

  // The GNS lives with the first task's machine (paper §3.2: each
  // workflow may have its own GNS), replicated `gns_replicas` times as
  // a multi-master cluster: the namespace is sharded across replicas,
  // every write is vector-clock versioned, and the background
  // anti-entropy loop repairs whatever fault injection diverges.
  const std::string& gns_host = spec.tasks.front().machine;
  ctx.service_transport = testbed_.transport(gns_host);
  gns::GnsCluster::Options cluster_options;
  cluster_options.num_shards =
      static_cast<std::uint32_t>(std::max(1, options.gns_shards));
  cluster_options.ae_interval = std::chrono::milliseconds(100);
  ctx.gns = std::make_unique<gns::GnsCluster>(*ctx.service_transport,
                                              cluster_options);
  const int replicas = std::max(1, options.gns_replicas);
  for (int i = 0; i < replicas; ++i) {
    GL_RETURN_IF_ERROR(ctx.gns->add_replica(
        strings::cat("gns-", i),
        net::inproc_endpoint(gns_host,
                             strings::cat("gns-", ctx.run_tag, "-", i))));
  }
  GL_RETURN_IF_ERROR(ctx.gns->start());
  for (const gns::ReplicaAddress& replica : ctx.gns->endpoints()) {
    ctx.gns_endpoints.emplace_back(replica.name, replica.endpoint);
  }

  if (!options.checkpoint_path.empty()) {
    if (options.mode != CouplingMode::kSequentialFiles) {
      return invalid_argument(
          "checkpointing requires sequential-files coupling (tailing and "
          "buffer streams are not durable across a coordinator crash)");
    }
    GL_ASSIGN_OR_RETURN(ctx.checkpoint,
                        CheckpointLog::open(options.checkpoint_path));
    ctx.resuming = ctx.checkpoint->replayed() > 0;
    if (ctx.resuming) {
      GL_LOG(kInfo, "resuming from checkpoint ", options.checkpoint_path,
             " (", ctx.checkpoint->replayed(), " records)");
    }
  }

  GL_RETURN_IF_ERROR(prepare_external_inputs(spec, edges, ctx));
  GL_RETURN_IF_ERROR(install_rules(spec, edges, options, ctx));

  WorkflowReport report;
  ctx.start = testbed_.clock().now();

  if (options.mode == CouplingMode::kSequentialFiles) {
    for (const std::size_t index : order) {
      const TaskSpec& producer = spec.tasks[index];
      TaskResult result;
      const StageRecord* done =
          ctx.checkpoint ? ctx.checkpoint->stage(producer.kernel.name)
                         : nullptr;
      if (done != nullptr && stage_outputs_valid(*done, ctx.dirs)) {
        // Durably finished before the crash and the outputs still
        // hash-match on disk: keep the journaled accounting, skip the
        // compute.
        checkpoint_stage_skipped_counter().add();
        GL_LOG(kInfo, "stage ", producer.kernel.name,
               " replayed from checkpoint");
        result = task_result_from(*done);
      } else {
        auto attempt = run_task(spec, index, options, ctx);
        if (!attempt.is_ok() && recoverable(attempt.status().code())) {
          // Staged coupling already isolates stages behind whole files,
          // so one in-place re-run is the whole recovery story here.
          GL_LOG(kWarn, "stage ", producer.kernel.name, " failed (",
                 attempt.status(), "); re-running");
          stage_reruns_counter().add();
          obs::Span rerun_span(obs::SpanKind::kRetry,
                               strings::cat("stage.rerun:",
                                            producer.kernel.name));
          rerun_span.add_attr("error", attempt.status().message());
          attempt = run_task(spec, index, options, ctx);
        }
        GL_ASSIGN_OR_RETURN(result, std::move(attempt));
        // Stages executed during a resume (journal missing or outputs
        // invalidated) are the re-run work a crash cost us.
        if (ctx.resuming) stage_reruns_counter().add();
        if (ctx.checkpoint) {
          GL_ASSIGN_OR_RETURN(
              const StageRecord record,
              make_stage_record(producer, result, ctx.dirs));
          GL_RETURN_IF_ERROR(ctx.checkpoint->append_stage(record));
        }
      }
      report.tasks.push_back(result);

      // Stage outputs that remote consumers need (GridFTP-style copy).
      for (const Edge& edge : edges) {
        if (edge.producer != index) continue;
        std::vector<std::string> destinations;
        for (const std::size_t consumer : edge.consumers) {
          const std::string& machine = spec.tasks[consumer].machine;
          if (machine != producer.machine &&
              std::find(destinations.begin(), destinations.end(),
                        machine) == destinations.end()) {
            destinations.push_back(machine);
          }
        }
        // Checkpoint-skip first; what remains actually needs shipping.
        std::vector<std::string> pending;
        for (const std::string& destination : destinations) {
          if (ctx.checkpoint) {
            const CopyRecord* copied = ctx.checkpoint->copy(
                edge.path, producer.machine, destination);
            if (copied != nullptr) {
              const auto on_disk = hash_file(
                  canonical_in(ctx.dirs.at(destination), edge.path));
              if (on_disk.is_ok() && *on_disk == copied->dest_hash) {
                checkpoint_copy_skipped_counter().add();
                report.copies.push_back(CopyResult{
                    copied->path, copied->from, copied->to,
                    copied->finished_s, copied->seconds});
                continue;
              }
            }
          }
          pending.push_back(destination);
        }
        // 2+ cross-machine consumers: one multicast distribution instead
        // of N point-to-point copies (DESIGN.md §12).
        if (pending.size() >= 2 && options.multicast_fanout > 0) {
          GL_RETURN_IF_ERROR(stage_copy_many(edge.path, producer.machine,
                                             pending, options, ctx,
                                             report));
        } else {
          for (const std::string& destination : pending) {
            GL_RETURN_IF_ERROR(stage_copy(edge.path, producer.machine,
                                          destination, options, ctx,
                                          report));
          }
        }
        if (ctx.checkpoint && !pending.empty()) {
          // The fresh copies are the last `pending.size()` report rows.
          const std::size_t first = report.copies.size() - pending.size();
          for (std::size_t i = first; i < report.copies.size(); ++i) {
            const CopyResult& copy = report.copies[i];
            GL_ASSIGN_OR_RETURN(
                const std::uint64_t dest_hash,
                hash_file(canonical_in(ctx.dirs.at(copy.to), edge.path)));
            GL_RETURN_IF_ERROR(ctx.checkpoint->append_copy(
                CopyRecord{copy.path, copy.from, copy.to, copy.finished_s,
                           copy.seconds, dest_hash}));
          }
        }
      }
    }
  } else {
    // Concurrent disciplines: every stage starts at once.
    std::vector<std::thread> threads;
    std::vector<Result<TaskResult>> results(
        spec.tasks.size(), Result<TaskResult>(internal_error("not run")));
    threads.reserve(spec.tasks.size());
    // Trace context and the run budget are thread-local: capture both
    // here and install them in each stage thread so stage spans parent
    // correctly and stage IO keeps the workflow deadline.
    const obs::TraceContext trace_parent = obs::current_context();
    const std::optional<WallClock::time_point> budget = current_deadline();
    for (std::size_t index = 0; index < spec.tasks.size(); ++index) {
      threads.emplace_back([&, index, budget] {
        obs::ScopedTraceContext trace_scope(trace_parent);
        ScopedDeadline stage_deadline(budget);
        results[index] = run_task(spec, index, options, ctx);
        // Publish completion markers so tailing readers can see EOF.
        if (options.mode == CouplingMode::kConcurrentFiles &&
            results[index].is_ok()) {
          const TaskSpec& task = spec.tasks[index];
          for (const apps::StreamSpec& out : task.kernel.outputs) {
            const std::string marker = core::TailingLocalFileClient::
                done_marker(canonical_in(ctx.dirs.at(task.machine),
                                         out.path));
            std::ofstream(marker).put('\n');
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    GL_RETURN_IF_ERROR(recover_failed_tasks(spec, edges, order, options, ctx,
                                            results, report));
    for (std::size_t index = 0; index < spec.tasks.size(); ++index) {
      GL_ASSIGN_OR_RETURN(TaskResult result, std::move(results[index]));
      report.tasks.push_back(result);
    }
    std::sort(report.tasks.begin(), report.tasks.end(),
              [](const TaskResult& a, const TaskResult& b) {
                return a.finished_s < b.finished_s;
              });
  }

  for (const TaskResult& task : report.tasks) {
    report.total_seconds = std::max(report.total_seconds, task.finished_s);
  }
  for (const CopyResult& copy : report.copies) {
    report.total_seconds = std::max(report.total_seconds, copy.finished_s);
  }

  // Tear down per-run services.
  for (auto& [machine, server] : ctx.buffer_servers) server->stop();
  for (auto& [machine, server] : ctx.file_servers) server->stop();
  if (ctx.gns) {
    // A run that armed (and healed) a partition may leave replicas
    // divergent; drain the remaining deltas so post-run assertions see
    // a converged namespace. Still-armed faults make this best-effort.
    const Status converged = ctx.gns->converge(/*max_rounds=*/8);
    if (!converged.is_ok()) {
      GL_LOG(kWarn, "gns cluster did not converge at teardown: ",
             converged);
    }
    ctx.gns->stop();
  }
  return report;
}

Status WorkflowRunner::prepare_external_inputs(const WorkflowSpec& spec,
                                               const std::vector<Edge>& edges,
                                               RunContext& ctx) {
  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    for (const apps::StreamSpec& input : external_inputs(spec, edges, t)) {
      const std::string full =
          canonical_in(ctx.dirs.at(spec.tasks[t].machine), input.path);
      GL_RETURN_IF_ERROR(materialize_stream(full, input.path, input.bytes));
    }
  }
  return Status::ok();
}

Status WorkflowRunner::install_rules(const WorkflowSpec& spec,
                                     const std::vector<Edge>& edges,
                                     const Options& options,
                                     RunContext& ctx) {
  switch (options.mode) {
    case CouplingMode::kSequentialFiles: {
      // Plain local IO everywhere; cross-machine edges need the
      // producer's file server up for the staging copies.
      for (const Edge& edge : edges) {
        const std::string& producer_machine =
            spec.tasks[edge.producer].machine;
        const bool crosses = std::any_of(
            edge.consumers.begin(), edge.consumers.end(),
            [&](std::size_t c) {
              return spec.tasks[c].machine != producer_machine;
            });
        if (!crosses) continue;
        GL_RETURN_IF_ERROR(
            ensure_file_server(producer_machine, ctx).status());
      }
      return Status::ok();
    }

    case CouplingMode::kConcurrentFiles: {
      // Tail-read every edge file. (The paper ran this on one machine;
      // we also require it, since a tailing read needs a shared FS.)
      for (const TaskSpec& task : spec.tasks) {
        if (task.machine != spec.tasks.front().machine) {
          return invalid_argument(
              "concurrent-files coupling requires a single machine");
        }
      }
      for (const Edge& edge : edges) {
        for (const std::size_t consumer : edge.consumers) {
          const std::string& machine = spec.tasks[consumer].machine;
          gns::MappingRule rule;
          rule.host_pattern = machine;
          rule.path_pattern = canonical_in(ctx.dirs.at(machine), edge.path);
          rule.mapping.mode = gns::IoMode::kLocal;
          rule.mapping.tail = true;
          GL_RETURN_IF_ERROR(ctx.gns->add_rule(rule));
        }
      }
      return Status::ok();
    }

    case CouplingMode::kGridBuffers: {
      for (const Edge& edge : edges) {
        // Consumers spanning 2+ machines get a broadcast channel routed
        // through the multicast relay tree (DESIGN.md §12); single-
        // machine readerships keep the paper's reader-end placement.
        if (options.multicast_fanout > 0) {
          const std::string& producer_machine =
              spec.tasks[edge.producer].machine;
          std::vector<std::string> remote_machines;
          std::map<std::string, std::uint32_t> local_readers;
          for (const std::size_t consumer : edge.consumers) {
            const std::string& machine = spec.tasks[consumer].machine;
            if (++local_readers[machine] == 1 &&
                machine != producer_machine) {
              remote_machines.push_back(machine);
            }
          }
          if (remote_machines.size() >= 2) {
            GL_RETURN_IF_ERROR(install_broadcast_edge(
                spec, edge, remote_machines, local_readers, options, ctx));
            continue;
          }
        }

        // Buffer placed at the (first) reader's end (paper §3.1).
        const std::string& buffer_machine =
            spec.tasks[edge.consumers.front()].machine;
        GL_ASSIGN_OR_RETURN(gridbuffer::GridBufferServer * server,
                            ensure_buffer_server(buffer_machine, ctx));
        const std::string channel = strings::cat(ctx.run_tag, "/",
                                                 edge.path);
        const std::string buffer_endpoint =
            server->endpoint().to_string();

        std::uint32_t block_size = options.buffer_block;
        if (options.buffer_block_fast_link != 0) {
          const auto producer_spec =
              testbed::find_machine(spec.tasks[edge.producer].machine);
          const auto buffer_spec = testbed::find_machine(buffer_machine);
          if (producer_spec.is_ok() && buffer_spec.is_ok() &&
              testbed::link_between(*producer_spec, *buffer_spec)
                      .latency_s < options.fast_link_latency_s) {
            // Keep ~64 blocks per stream so small edges still flow with
            // fine granularity, capped by the configured fast block.
            const std::uint64_t proportional =
                std::max<std::uint64_t>(512, edge.bytes / 64);
            block_size = static_cast<std::uint32_t>(std::min<std::uint64_t>(
                std::max<std::uint64_t>(options.buffer_block,
                                        proportional),
                options.buffer_block_fast_link));
          }
        }

        gns::FileMapping mapping;
        mapping.mode = gns::IoMode::kGridBuffer;
        mapping.channel = channel;
        mapping.buffer_endpoint = buffer_endpoint;
        mapping.block_size = block_size;
        mapping.cache_enabled = options.buffer_cache;
        mapping.reader_count =
            static_cast<std::uint32_t>(edge.consumers.size());

        gns::MappingRule producer_rule;
        producer_rule.host_pattern = spec.tasks[edge.producer].machine;
        producer_rule.path_pattern = canonical_in(
            ctx.dirs.at(spec.tasks[edge.producer].machine), edge.path);
        producer_rule.mapping = mapping;
        GL_RETURN_IF_ERROR(ctx.gns->add_rule(producer_rule));

        for (const std::size_t consumer : edge.consumers) {
          gns::MappingRule consumer_rule;
          consumer_rule.host_pattern = spec.tasks[consumer].machine;
          consumer_rule.path_pattern = canonical_in(
              ctx.dirs.at(spec.tasks[consumer].machine), edge.path);
          consumer_rule.mapping = mapping;
          GL_RETURN_IF_ERROR(ctx.gns->add_rule(consumer_rule));
        }
      }
      return Status::ok();
    }
  }
  return internal_error("unhandled coupling mode");
}

Status WorkflowRunner::install_broadcast_edge(
    const WorkflowSpec& spec, const Edge& edge,
    const std::vector<std::string>& machines,
    const std::map<std::string, std::uint32_t>& local_readers,
    const Options& options, RunContext& ctx) {
  const std::string& producer_machine = spec.tasks[edge.producer].machine;
  for (const std::string& machine : machines) {
    GL_RETURN_IF_ERROR(ensure_buffer_server(machine, ctx).status());
  }

  // root_fanout=1: the producer sends each block exactly once, into the
  // cheapest first hop; the relay tree does the wide fan-out.
  multicast::TreeOptions tree_options;
  tree_options.max_fanout = options.multicast_fanout;
  tree_options.root_fanout = 1;
  GL_ASSIGN_OR_RETURN(
      const multicast::DistTree tree,
      multicast::plan_tree(producer_machine, machines,
                           testbed_pair_estimator(), tree_options));
  const int first_hop_index = tree.source().children.front();
  const std::string& first_hop = tree.nodes[static_cast<std::size_t>(
                                                first_hop_index)]
                                     .host;
  // Consumers on the producer's own machine read from the first hop too,
  // so its channel expects them on top of its local readers.
  const auto producer_local_it = local_readers.find(producer_machine);
  const std::uint32_t producer_local =
      producer_local_it == local_readers.end() ? 0
                                               : producer_local_it->second;
  const auto readers_at = [&](const std::string& machine) {
    std::uint32_t readers = local_readers.at(machine);
    if (machine == first_hop) readers += producer_local;
    return readers;
  };

  const std::string channel = strings::cat(ctx.run_tag, "/", edge.path);

  gridbuffer::ChannelConfig config;
  config.block_size = options.buffer_block;
  config.cache_enabled = options.buffer_cache;

  // The wire subtrees the first hop fans every write out to. Every node
  // carries its machine-local reader count — expected_readers is the one
  // channel parameter that legitimately differs per machine.
  const std::function<multicast::RelayNode(int)> build =
      [&](int index) -> multicast::RelayNode {
    const multicast::TreeNode& planned =
        tree.nodes[static_cast<std::size_t>(index)];
    multicast::RelayNode node;
    node.host = planned.host;
    node.endpoint =
        ctx.buffer_servers.at(planned.host)->endpoint().to_string();
    node.path = channel;
    node.readers = readers_at(planned.host);
    node.children.reserve(planned.children.size());
    for (const int child : planned.children) {
      node.children.push_back(build(child));
    }
    return node;
  };
  std::vector<multicast::RelayNode> fan_children;
  for (const int child :
       tree.nodes[static_cast<std::size_t>(first_hop_index)].children) {
    fan_children.push_back(build(child));
  }
  ctx.buffer_servers.at(first_hop)->set_broadcast(channel, config,
                                                  fan_children);
  GL_LOG(kInfo, "broadcast channel ", channel, ": producer ",
         producer_machine, " -> ", first_hop, " -> ", machines.size() - 1,
         " relayed machine(s), depth ", tree.depth);

  gns::FileMapping base;
  base.mode = gns::IoMode::kGridBuffer;
  base.channel = channel;
  base.block_size = options.buffer_block;
  base.cache_enabled = options.buffer_cache;

  // The producer writes once into the first hop's server.
  gns::FileMapping producer_mapping = base;
  producer_mapping.buffer_endpoint =
      ctx.buffer_servers.at(first_hop)->endpoint().to_string();
  producer_mapping.reader_count = readers_at(first_hop);
  gns::MappingRule producer_rule;
  producer_rule.host_pattern = producer_machine;
  producer_rule.path_pattern =
      canonical_in(ctx.dirs.at(producer_machine), edge.path);
  producer_rule.mapping = producer_mapping;
  GL_RETURN_IF_ERROR(ctx.gns->add_rule(producer_rule));

  // Every consumer reads from its machine-local server (producer-machine
  // consumers from the first hop's).
  for (const std::size_t consumer : edge.consumers) {
    const std::string& machine = spec.tasks[consumer].machine;
    gns::FileMapping mapping = base;
    const std::string& served_by =
        machine == producer_machine ? first_hop : machine;
    mapping.buffer_endpoint =
        ctx.buffer_servers.at(served_by)->endpoint().to_string();
    mapping.reader_count = readers_at(served_by);
    gns::MappingRule rule;
    rule.host_pattern = machine;
    rule.path_pattern = canonical_in(ctx.dirs.at(machine), edge.path);
    rule.mapping = mapping;
    GL_RETURN_IF_ERROR(ctx.gns->add_rule(rule));
  }
  return Status::ok();
}

Result<TaskResult> WorkflowRunner::run_task(const WorkflowSpec& spec,
                                            std::size_t index,
                                            const Options& options,
                                            RunContext& ctx) {
  const TaskSpec& task = spec.tasks[index];
  obs::Span stage_span(obs::SpanKind::kStage,
                       strings::cat("stage:", task.kernel.name));
  stage_span.add_attr("machine", task.machine);
  GL_ASSIGN_OR_RETURN(testbed::MachineRuntime* machine,
                      testbed_.machine(task.machine));
  auto transport = testbed_.transport(task.machine);
  gns::ReplicatedNameService::Options ns_options;
  ns_options.client_cache_ttl = std::chrono::milliseconds(200);
  gns::ReplicatedNameService name_service(*transport, ns_options);
  for (const auto& [name, endpoint] : ctx.gns_endpoints) {
    name_service.add_replica(name, endpoint);
  }
  // Static-testbed link model as the NWS fallback: replica selection
  // keeps working (degraded) when every estimate has gone stale.
  testbed::StaticModelEstimator static_links(task.machine);

  core::FileMultiplexer::Options fm_options;
  fm_options.host = task.machine;
  fm_options.local_root = ctx.dirs.at(task.machine);
  fm_options.scratch_dir = canonical_in(ctx.dirs.at(task.machine),
                                        "scratch");
  fm_options.gns = &name_service;
  fm_options.fallback_estimator = &static_links;
  fm_options.transport = transport.get();
  fm_options.clock = &testbed_.clock();
  fm_options.buffer.writer_window_blocks = options.writer_window;
  fm_options.buffer.writer_flusher_threads = options.flusher_threads;
  fm_options.buffer.read_deadline_ms = options.read_deadline_ms;
  fm_options.tail_poll_interval = options.poll_interval;
  if (options.mode == CouplingMode::kConcurrentFiles) {
    Clock* clock = &testbed_.clock();
    const double duty = options.poll_duty;
    fm_options.poll_wait = [machine, clock, duty](Duration interval) {
      // Polling burns a CPU share: `duty` of the interval is busy work
      // competing with real compute, the rest is sleep.
      const double seconds = to_seconds_d(interval);
      machine->compute(duty * seconds * machine->spec().speed);
      clock->sleep_for(from_seconds_d(seconds * (1.0 - duty)));
    };
  }

  core::FileMultiplexer fm(fm_options);
  GL_ASSIGN_OR_RETURN(
      const apps::AppReport app_report,
      apps::run_app(task.kernel, fm, *machine, testbed_.clock()));
  GL_RETURN_IF_ERROR(fm.close_all());

  TaskResult result;
  result.name = task.kernel.name;
  result.machine = task.machine;
  result.started_s = to_seconds_d(app_report.started - ctx.start);
  result.finished_s = to_seconds_d(app_report.finished - ctx.start);
  result.bytes_read = app_report.bytes_read;
  result.bytes_written = app_report.bytes_written;
  GL_LOG(kInfo, "task ", result.name, " on ", result.machine,
         " finished at ", result.finished_s, "s");
  return result;
}

Result<remote::FileServer*> WorkflowRunner::ensure_file_server(
    const std::string& machine, RunContext& ctx) {
  auto& server = ctx.file_servers[machine];
  if (!server) {
    auto& transport = ctx.server_transports[machine];
    transport = testbed_.transport(machine);
    server = std::make_unique<remote::FileServer>(
        ctx.dirs.at(machine), *transport,
        net::inproc_endpoint(machine, strings::cat("fs-", ctx.run_tag)));
    GL_RETURN_IF_ERROR(server->start());
  }
  return server.get();
}

Result<gridbuffer::GridBufferServer*> WorkflowRunner::ensure_buffer_server(
    const std::string& machine, RunContext& ctx) {
  auto& server = ctx.buffer_servers[machine];
  if (!server) {
    auto& transport =
        ctx.server_transports[strings::cat("gbuf-", machine)];
    transport = testbed_.transport(machine);
    server = std::make_unique<gridbuffer::GridBufferServer>(
        canonical_in(ctx.dirs.at(machine), "gbuf-cache"), *transport,
        net::inproc_endpoint(machine, strings::cat("gbuf-", ctx.run_tag)));
    GL_RETURN_IF_ERROR(server->start());
  }
  return server.get();
}

Status WorkflowRunner::stage_copy(const std::string& path,
                                  const std::string& from,
                                  const std::string& to,
                                  const Options& options, RunContext& ctx,
                                  WorkflowReport& report) {
  GL_ASSIGN_OR_RETURN(remote::FileServer * server,
                      ensure_file_server(from, ctx));
  auto transport = testbed_.transport(to);
  remote::FileCopier::Options copy_options;
  copy_options.chunk_size = options.copy_chunk;
  copy_options.parallel_streams = options.copy_streams;
  remote::FileCopier copier(*transport, testbed_.clock(), copy_options);
  GL_ASSIGN_OR_RETURN(
      const remote::CopyStats stats,
      copier.fetch(server->endpoint(), path,
                   canonical_in(ctx.dirs.at(to), path)));
  CopyResult copy;
  copy.path = path;
  copy.from = from;
  copy.to = to;
  copy.seconds = stats.seconds;
  copy.finished_s = to_seconds_d(testbed_.clock().now() - ctx.start);
  report.copies.push_back(copy);
  return Status::ok();
}

Status WorkflowRunner::stage_copy_many(
    const std::string& path, const std::string& from,
    const std::vector<std::string>& destinations, const Options& options,
    RunContext& ctx, WorkflowReport& report) {
  // Push-based: the copier runs at the source and streams chunks into
  // the relay tree; every destination's file server can be recruited as
  // an interior relay, so each needs to be up.
  std::vector<remote::MultiCopyTarget> targets;
  targets.reserve(destinations.size());
  for (const std::string& destination : destinations) {
    GL_ASSIGN_OR_RETURN(remote::FileServer * server,
                        ensure_file_server(destination, ctx));
    targets.push_back(
        remote::MultiCopyTarget{destination, server->endpoint(), path});
  }
  auto transport = testbed_.transport(from);
  remote::FileCopier::Options copy_options;
  copy_options.chunk_size = options.copy_chunk;
  copy_options.parallel_streams = options.copy_streams;
  remote::FileCopier copier(*transport, testbed_.clock(), copy_options);
  multicast::TreeOptions tree_options;
  tree_options.max_fanout = options.multicast_fanout;
  tree_options.root_fanout =
      std::min(tree_options.root_fanout, options.multicast_fanout);
  GL_ASSIGN_OR_RETURN(
      const remote::MultiCopyStats stats,
      copier.copy_to_many(canonical_in(ctx.dirs.at(from), path), targets,
                          tree_options, testbed_pair_estimator()));
  const double finished_s =
      to_seconds_d(testbed_.clock().now() - ctx.start);
  for (const std::string& destination : destinations) {
    CopyResult copy;
    copy.path = path;
    copy.from = from;
    copy.to = destination;
    copy.seconds = stats.seconds;
    copy.finished_s = finished_s;
    report.copies.push_back(copy);
  }
  GL_LOG(kInfo, "multicast staged ", path, " from ", from, " to ",
         destinations.size(), " machine(s): depth ", stats.tree_depth,
         ", source bytes ", stats.source_bytes_sent, ", reparents ",
         stats.reparents);
  return Status::ok();
}

Status WorkflowRunner::recover_failed_tasks(
    const WorkflowSpec& spec, const std::vector<Edge>& edges,
    const std::vector<std::size_t>& order, const Options& options,
    RunContext& ctx, std::vector<Result<TaskResult>>& results,
    WorkflowReport& report) {
  std::vector<std::size_t> failed;  // topological order
  for (const std::size_t index : order) {
    if (!results[index].is_ok() &&
        recoverable(results[index].status().code())) {
      failed.push_back(index);
    }
  }
  if (failed.empty()) return Status::ok();
  const std::set<std::size_t> rerun(failed.begin(), failed.end());
  GL_LOG(kWarn, "recovering ", failed.size(),
         " failed stage(s) via staged-file remap");

  // A re-written (host, path) key supersedes the old mapping (higher
  // Lamport priority wins the lookup), so writing kLocal rules flips
  // the failed stages' edges — and only those — to the staged-file
  // discipline. Inputs from producers that succeeded keep
  // their original mapping: a closed Grid Buffer channel replays its
  // cache file to the fresh reader, and a tailed file is complete on
  // disk with its done marker published.
  for (const std::size_t index : failed) {
    const TaskSpec& task = spec.tasks[index];
    for (const Edge& edge : edges) {
      if (edge.producer != index) continue;
      gns::MappingRule rule;
      rule.host_pattern = task.machine;
      rule.path_pattern = canonical_in(ctx.dirs.at(task.machine), edge.path);
      rule.mapping.mode = gns::IoMode::kLocal;
      GL_RETURN_IF_ERROR(ctx.gns->add_rule(rule));
      for (const std::size_t consumer : edge.consumers) {
        if (!rerun.contains(consumer)) continue;
        const std::string& machine = spec.tasks[consumer].machine;
        gns::MappingRule consumer_rule;
        consumer_rule.host_pattern = machine;
        consumer_rule.path_pattern =
            canonical_in(ctx.dirs.at(machine), edge.path);
        consumer_rule.mapping.mode = gns::IoMode::kLocal;
        GL_RETURN_IF_ERROR(ctx.gns->add_rule(consumer_rule));
      }
    }
  }

  for (const std::size_t index : failed) {
    const TaskSpec& task = spec.tasks[index];
    GL_LOG(kWarn, "re-running stage ", task.kernel.name, " (",
           results[index].status(), ")");
    stage_reruns_counter().add();
    // The recovery re-run (and the copies that re-ship its outputs)
    // shows up as one child span on the timeline.
    obs::Span recovery_span(obs::SpanKind::kRecovery,
                            strings::cat("stage.recover:",
                                         task.kernel.name));
    recovery_span.add_attr("error", results[index].status().message());
    GL_ASSIGN_OR_RETURN(TaskResult result, run_task(spec, index, options,
                                                    ctx));
    // Ship re-staged outputs to re-run consumers on other machines.
    for (const Edge& edge : edges) {
      if (edge.producer != index) continue;
      std::vector<std::string> destinations;
      for (const std::size_t consumer : edge.consumers) {
        if (!rerun.contains(consumer)) continue;
        const std::string& machine = spec.tasks[consumer].machine;
        if (machine != task.machine &&
            std::find(destinations.begin(), destinations.end(), machine) ==
                destinations.end()) {
          destinations.push_back(machine);
        }
      }
      for (const std::string& destination : destinations) {
        GL_RETURN_IF_ERROR(stage_copy(edge.path, task.machine, destination,
                                      options, ctx, report));
      }
    }
    results[index] = std::move(result);
  }
  return Status::ok();
}

}  // namespace griddles::workflow
