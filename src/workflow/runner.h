// WorkflowRunner: executes a workflow on the modelled testbed under one
// of the paper's coupling disciplines.
//
//   kSequentialFiles — stages run one after another, conventional local
//       files (Table 2 exp 1; Table 3). Cross-machine edges are staged
//       with a GridFTP-style copy between stages and the copy time is
//       reported (Table 5 "Files" + "File Copy" rows; Table 2 would use
//       this had its stages been distributed with files).
//   kConcurrentFiles — every stage launched at once on one machine, edge
//       files tail-read with poll-and-retry (Table 4 "With Files").
//   kGridBuffers — every stage launched at once, edges mapped to Grid
//       Buffer channels with the buffer server at the reader's end
//       (Table 2 exps 2-3; Table 4 "Buffers"; Table 5 "Buffers").
//
// Switching discipline changes ONLY the GNS rules the runner installs —
// the application kernels are bit-identical across modes, which is the
// paper's headline claim.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/multiplexer.h"
#include "src/gridbuffer/server.h"
#include "src/remote/file_server.h"
#include "src/testbed/testbed.h"
#include "src/workflow/spec.h"

namespace griddles::workflow {

enum class CouplingMode {
  kSequentialFiles,
  kConcurrentFiles,
  kGridBuffers,
};

std::string_view coupling_mode_name(CouplingMode mode) noexcept;

struct TaskResult {
  std::string name;
  std::string machine;
  double started_s = 0;
  double finished_s = 0;  // cumulative, from workflow start
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

struct CopyResult {
  std::string path;
  std::string from;
  std::string to;
  double finished_s = 0;  // cumulative time when this copy completed
  double seconds = 0;
};

struct WorkflowReport {
  std::vector<TaskResult> tasks;   // in completion order
  std::vector<CopyResult> copies;  // staged copies (sequential mode)
  double total_seconds = 0;

  const TaskResult* task(const std::string& name) const;
};

class WorkflowRunner {
 public:
  struct Options {
    CouplingMode mode = CouplingMode::kSequentialFiles;
    /// CPU share a tailing reader burns while polling (kConcurrentFiles).
    double poll_duty = 0.25;
    Duration poll_interval = std::chrono::milliseconds(500);
    /// Grid Buffer channel parameters.
    std::uint32_t buffer_block = 4096;
    bool buffer_cache = true;
    /// Block size override for low-latency (same-site) edges; 0 keeps
    /// buffer_block. Byte-scaled benches shrink buffer_block to keep WAN
    /// streams latency-faithful, which makes loopback edges needlessly
    /// RPC-bound — a larger block there changes no modelled time.
    std::uint32_t buffer_block_fast_link = 0;
    /// One-way latency below which an edge counts as "fast" (seconds).
    double fast_link_latency_s = 0.005;
    /// Writer pipelining: in-flight blocks ~= flusher_threads, which
    /// bounds WAN throughput to ~threads*block/RTT (paper-faithful
    /// latency sensitivity; raise it for the ablation).
    std::size_t writer_window = 16;
    int flusher_threads = 4;
    /// Parallel streams for staged copies.
    int copy_streams = 4;
    std::uint32_t copy_chunk = 1u << 20;
    /// Relay fanout for multicast distribution (DESIGN.md §12): when a
    /// stage output feeds 2+ cross-machine consumers, staged copies go
    /// through a bounded-fanout spanning tree (and grid-buffer edges
    /// with 2+ consumer machines become broadcast channels) instead of
    /// N point-to-point transfers. 0 disables multicast entirely.
    int multicast_fanout = 4;
    /// Fail a stuck run after this much wall time per buffer read.
    std::uint64_t read_deadline_ms = 120000;
    /// End-to-end deadline for the whole run, in *model* seconds
    /// (0 = none). Installed as the ambient budget (src/common/deadline.h)
    /// for every stage, copy, and nested RPC hop: expired work is
    /// rejected with kDeadlineExceeded instead of executing late.
    double deadline_s = 0;
    /// GNS replication factor: this many multi-master replica nodes
    /// (each owning its own store copy, converged by anti-entropy)
    /// behind a ReplicatedNameService per task, so a replica loss
    /// mid-lookup fails over instead of failing a stage.
    int gns_replicas = 1;
    /// Shards the GNS namespace is hashed into (rendezvous-assigned to
    /// replicas; glob rules live in a broadcast shard every replica
    /// owns). More shards spread load and shrink anti-entropy deltas.
    int gns_shards = 8;
    /// Append-only journal of completed stages and staging copies
    /// (sequential-files mode only). A fresh file starts journaling; an
    /// existing one resumes the run, re-running only incomplete stages.
    /// Empty disables checkpointing. The workflow's scratch directories
    /// must be the same across the original and resumed runs.
    std::string checkpoint_path;
  };

  explicit WorkflowRunner(testbed::TestbedRuntime& testbed)
      : testbed_(testbed) {}

  /// Runs the workflow; model times in the report are relative to the
  /// run's start.
  Result<WorkflowReport> run(const WorkflowSpec& spec,
                             const Options& options);

 private:
  struct RunContext;

  Status prepare_external_inputs(const WorkflowSpec& spec,
                                 const std::vector<Edge>& edges,
                                 RunContext& ctx);
  Status install_rules(const WorkflowSpec& spec,
                       const std::vector<Edge>& edges, const Options& options,
                       RunContext& ctx);
  Result<TaskResult> run_task(const WorkflowSpec& spec, std::size_t index,
                              const Options& options, RunContext& ctx);

  /// Starts (or reuses) the staging file server on `machine`.
  Result<remote::FileServer*> ensure_file_server(const std::string& machine,
                                                 RunContext& ctx);
  /// GridFTP-style staging copy of `path` from `from` to `to`; appends a
  /// CopyResult to the report.
  Status stage_copy(const std::string& path, const std::string& from,
                    const std::string& to, const Options& options,
                    RunContext& ctx, WorkflowReport& report);
  /// Multicast staging of `path` from `from` to 2+ machines through a
  /// relay tree of their file servers; appends one CopyResult per
  /// destination to the report.
  Status stage_copy_many(const std::string& path, const std::string& from,
                         const std::vector<std::string>& destinations,
                         const Options& options, RunContext& ctx,
                         WorkflowReport& report);

  /// Starts (or reuses) the Grid Buffer server on `machine`.
  Result<gridbuffer::GridBufferServer*> ensure_buffer_server(
      const std::string& machine, RunContext& ctx);
  /// Installs the broadcast-channel rules for an edge whose consumers
  /// span 2+ machines: one buffer server per consumer machine, writes
  /// routed through the multicast relay tree.
  Status install_broadcast_edge(
      const WorkflowSpec& spec, const Edge& edge,
      const std::vector<std::string>& machines,
      const std::map<std::string, std::uint32_t>& local_readers,
      const Options& options, RunContext& ctx);

  /// Re-runs tasks that failed with a recoverable Status (kUnavailable,
  /// kTimeout, kDataLoss) after remapping their edges to staged-file
  /// mode via GNS overrides — the paper's fallback coupling. Results of
  /// recovered tasks are replaced in `results`.
  Status recover_failed_tasks(const WorkflowSpec& spec,
                              const std::vector<Edge>& edges,
                              const std::vector<std::size_t>& order,
                              const Options& options, RunContext& ctx,
                              std::vector<Result<TaskResult>>& results,
                              WorkflowReport& report);

  testbed::TestbedRuntime& testbed_;
};

}  // namespace griddles::workflow
