// Crash-restartable workflow journal (DESIGN.md "Control-plane
// resilience").
//
// The sequential-files runner appends one record per completed stage
// (with the FNV-1a hash of every output file) and one per finished
// staging copy (with the hash at the destination). Records are framed
//
//   [u32 magic 'GLCK'] [u8 kind] [u32 payload length] [payload]
//   [u64 FNV-1a of payload]
//
// and each append is fsync'd, so after a coordinator crash the journal
// holds exactly the work that durably finished. open() replays the file
// and tolerates a torn tail: the first short or checksum-failing record
// ends the replay and the file is truncated back to the last good
// record, ready for clean appends. A resumed run skips stages whose
// recorded outputs still hash-match on disk and re-stages only missing
// copies, so a mid-pipeline crash no longer means a from-scratch re-run.
//
// Only the sequential-files discipline journals: tailing reads and Grid
// Buffer streams are not durable across a coordinator death, so the
// runner rejects --checkpoint for them. Appends come from the single
// runner thread; the class is not thread-safe.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace griddles::workflow {

/// A durably completed stage: identity, timings, and the hash of every
/// output file (relative path within the stage machine's directory).
struct StageRecord {
  std::string name;
  std::string machine;
  double started_s = 0;
  double finished_s = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::vector<std::pair<std::string, std::uint64_t>> outputs;
};

/// A durably completed staging copy, with the destination file's hash.
struct CopyRecord {
  std::string path;
  std::string from;
  std::string to;
  double finished_s = 0;
  double seconds = 0;
  std::uint64_t dest_hash = 0;
};

/// Streaming FNV-1a of a file's contents (the journal's output hash and
/// the resume-time validation primitive).
Result<std::uint64_t> hash_file(const std::string& path);

class CheckpointLog {
 public:
  /// Opens (creating if absent) the journal at `path`, replays every
  /// intact record, truncates any torn tail, and leaves the file ready
  /// for appends. `checkpoint.records.replayed` counts recovered
  /// records; `checkpoint.replay_s` observes the load time.
  static Result<std::unique_ptr<CheckpointLog>> open(const std::string& path);

  ~CheckpointLog();
  CheckpointLog(const CheckpointLog&) = delete;
  CheckpointLog& operator=(const CheckpointLog&) = delete;

  /// Durably appends (write + fsync) before returning OK.
  Status append_stage(const StageRecord& record);
  Status append_copy(const CopyRecord& record);

  /// The replayed record for a stage, or null. Last write wins if a
  /// stage was journaled twice (it can be, after an invalidated resume).
  const StageRecord* stage(const std::string& name) const;
  /// The replayed record for a (path, from, to) staging copy, or null.
  const CopyRecord* copy(const std::string& path, const std::string& from,
                         const std::string& to) const;

  /// Records recovered at open (0 for a fresh journal).
  std::size_t replayed() const noexcept { return replayed_; }

 private:
  CheckpointLog(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  Status append(std::uint8_t kind, const Bytes& payload);

  int fd_;
  std::string path_;
  std::size_t replayed_ = 0;
  std::vector<StageRecord> stages_;  // replay order
  std::vector<CopyRecord> copies_;
};

}  // namespace griddles::workflow
