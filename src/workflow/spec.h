// Workflow specifications: tasks (app kernels pinned to machines) and the
// file edges between them, inferred by matching output paths to input
// paths — the same implicit coupling legacy pipelines have.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/apps/kernel.h"

namespace griddles::workflow {

struct TaskSpec {
  apps::AppKernel kernel;
  std::string machine;  // a Table 1 machine name
};

/// A producer-to-consumers file dependency.
struct Edge {
  std::string path;            // the file name both sides open
  std::uint64_t bytes = 0;
  std::size_t producer = 0;    // task index
  std::vector<std::size_t> consumers;
};

struct WorkflowSpec {
  std::string name;
  std::vector<TaskSpec> tasks;

  /// Builds one spec from a pipeline definition with a machine per stage
  /// (machines.size() == 1 pins everything to that machine).
  static Result<WorkflowSpec> from_pipeline(
      std::string name, const std::vector<apps::AppKernel>& pipeline,
      const std::vector<std::string>& machines);
};

/// Infers file edges; fails on a path with two producers.
Result<std::vector<Edge>> infer_edges(const WorkflowSpec& spec);

/// Kahn topological order of task indices (edges as dependencies);
/// fails on a cycle.
Result<std::vector<std::size_t>> topological_order(
    const WorkflowSpec& spec, const std::vector<Edge>& edges);

/// Input paths of a task that no task produces (must pre-exist).
std::vector<apps::StreamSpec> external_inputs(const WorkflowSpec& spec,
                                              const std::vector<Edge>& edges,
                                              std::size_t task);

}  // namespace griddles::workflow
