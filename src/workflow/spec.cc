#include "src/workflow/spec.h"

#include <algorithm>
#include <deque>

#include "src/common/strings.h"

namespace griddles::workflow {

Result<WorkflowSpec> WorkflowSpec::from_pipeline(
    std::string name, const std::vector<apps::AppKernel>& pipeline,
    const std::vector<std::string>& machines) {
  if (machines.empty()) {
    return invalid_argument("workflow needs at least one machine");
  }
  if (machines.size() != 1 && machines.size() != pipeline.size()) {
    return invalid_argument(
        strings::cat("expected 1 or ", pipeline.size(), " machines, got ",
                     machines.size()));
  }
  WorkflowSpec spec;
  spec.name = std::move(name);
  for (std::size_t i = 0; i < pipeline.size(); ++i) {
    spec.tasks.push_back(TaskSpec{
        pipeline[i], machines.size() == 1 ? machines[0] : machines[i]});
  }
  return spec;
}

Result<std::vector<Edge>> infer_edges(const WorkflowSpec& spec) {
  std::map<std::string, std::size_t> producers;
  std::map<std::string, std::uint64_t> sizes;
  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    for (const apps::StreamSpec& out : spec.tasks[t].kernel.outputs) {
      const auto [it, inserted] = producers.emplace(out.path, t);
      if (!inserted) {
        return invalid_argument(
            strings::cat("two tasks produce '", out.path, "': ",
                         spec.tasks[it->second].kernel.name, " and ",
                         spec.tasks[t].kernel.name));
      }
      sizes[out.path] = out.bytes;
    }
  }
  std::map<std::string, Edge> edges;
  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    for (const apps::StreamSpec& in : spec.tasks[t].kernel.inputs) {
      const auto producer = producers.find(in.path);
      if (producer == producers.end()) continue;  // external input
      if (producer->second == t) {
        return invalid_argument(strings::cat(
            spec.tasks[t].kernel.name, " reads its own output '", in.path,
            "'"));
      }
      Edge& edge = edges[in.path];
      edge.path = in.path;
      edge.bytes = sizes[in.path];
      edge.producer = producer->second;
      edge.consumers.push_back(t);
    }
  }
  std::vector<Edge> out;
  out.reserve(edges.size());
  for (auto& [path, edge] : edges) out.push_back(std::move(edge));
  return out;
}

Result<std::vector<std::size_t>> topological_order(
    const WorkflowSpec& spec, const std::vector<Edge>& edges) {
  std::vector<std::size_t> in_degree(spec.tasks.size(), 0);
  std::vector<std::vector<std::size_t>> successors(spec.tasks.size());
  for (const Edge& edge : edges) {
    for (const std::size_t consumer : edge.consumers) {
      successors[edge.producer].push_back(consumer);
      ++in_degree[consumer];
    }
  }
  std::deque<std::size_t> ready;
  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    if (in_degree[t] == 0) ready.push_back(t);
  }
  std::vector<std::size_t> order;
  while (!ready.empty()) {
    const std::size_t t = ready.front();
    ready.pop_front();
    order.push_back(t);
    for (const std::size_t next : successors[t]) {
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  if (order.size() != spec.tasks.size()) {
    return invalid_argument(
        strings::cat("workflow '", spec.name, "' has a cycle"));
  }
  return order;
}

std::vector<apps::StreamSpec> external_inputs(const WorkflowSpec& spec,
                                              const std::vector<Edge>& edges,
                                              std::size_t task) {
  std::vector<apps::StreamSpec> externals;
  for (const apps::StreamSpec& in : spec.tasks[task].kernel.inputs) {
    const bool produced = std::any_of(
        edges.begin(), edges.end(),
        [&](const Edge& edge) { return edge.path == in.path; });
    if (!produced) externals.push_back(in);
  }
  return externals;
}

}  // namespace griddles::workflow
