// Shared retry discipline for fault-tolerant layers (RPC, staged copies).
//
// Backoff jitter comes from the armed plan's PRNG via fault::mix — never
// from wall time — so a retried schedule replays exactly alongside the
// fault schedule that triggered it.
#pragma once

#include <cstdint>

#include "src/common/clock.h"
#include "src/common/status.h"

namespace griddles::fault {

/// Capped exponential backoff with a deadline and deterministic jitter.
struct RetryPolicy {
  int max_attempts = 4;
  Duration initial_backoff = from_seconds_d(0.002);
  double multiplier = 2.0;
  Duration max_backoff = from_seconds_d(0.050);
  /// Total budget across attempts; Duration::zero() means unbounded.
  Duration deadline = Duration::zero();

  /// Transient codes worth retrying. kDataLoss is deliberately excluded:
  /// a verifiably-wrong payload needs a different source (failover or
  /// stage re-run), not the same request again.
  static bool retryable(ErrorCode code) noexcept {
    return code == ErrorCode::kUnavailable || code == ErrorCode::kTimeout;
  }

  /// Backoff before attempt `attempt` (1-based: the wait after the
  /// attempt-th failure). Exponential, capped, scaled by a jitter factor
  /// in [0.5, 1.0) derived from mix(plan seed, jitter_key, attempt) — a
  /// pure function, so replays are byte-identical.
  Duration backoff(int attempt, std::uint64_t jitter_key) const;

  /// True while `elapsed` leaves room for another attempt.
  bool within_deadline(Duration elapsed) const noexcept {
    return deadline == Duration::zero() || elapsed < deadline;
  }
};

/// Bumps the process-wide `retry.attempts` counter (call once per retry,
/// i.e. per attempt after the first).
void note_retry_attempt();

}  // namespace griddles::fault
