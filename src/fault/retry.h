// Shared retry discipline for fault-tolerant layers (RPC, staged copies).
//
// Backoff jitter comes from the armed plan's PRNG via fault::mix — never
// from wall time — so a retried schedule replays exactly alongside the
// fault schedule that triggered it.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace griddles::fault {

/// Capped exponential backoff with a deadline and deterministic jitter.
struct RetryPolicy {
  int max_attempts = 4;
  Duration initial_backoff = from_seconds_d(0.002);
  double multiplier = 2.0;
  Duration max_backoff = from_seconds_d(0.050);
  /// Total budget across attempts; Duration::zero() means unbounded.
  Duration deadline = Duration::zero();

  /// Transient codes worth retrying. kDataLoss is deliberately excluded:
  /// a verifiably-wrong payload needs a different source (failover or
  /// stage re-run), not the same request again. kResourceExhausted and
  /// kDeadlineExceeded are excluded by design: a shed response means
  /// the server is overloaded *right now*, and retrying it is exactly
  /// the storm the RetryBudget below exists to prevent; an exhausted
  /// budget cannot be fixed by burning more of it.
  static bool retryable(ErrorCode code) noexcept {
    return code == ErrorCode::kUnavailable || code == ErrorCode::kTimeout;
  }

  /// Backoff before attempt `attempt` (1-based: the wait after the
  /// attempt-th failure). Exponential, capped, scaled by a jitter factor
  /// in [0.5, 1.0) derived from mix(plan seed, jitter_key, attempt) — a
  /// pure function, so replays are byte-identical.
  Duration backoff(int attempt, std::uint64_t jitter_key) const;

  /// True while `elapsed` leaves room for another attempt.
  bool within_deadline(Duration elapsed) const noexcept {
    return deadline == Duration::zero() || elapsed < deadline;
  }
};

/// Bumps the process-wide `retry.attempts` counter (call once per retry,
/// i.e. per attempt after the first).
void note_retry_attempt();

/// Anti-retry-storm token buckets, one per peer key (DESIGN.md §14).
///
/// Every *fresh* request earns `earn_per_fresh` tokens for its peer
/// (capped at `burst`); every retry spends one whole token. When a
/// peer's bucket is dry the retry is denied — the caller surfaces the
/// original error instead — so in steady state retries can never exceed
/// `earn_per_fresh` of the fresh-request rate toward that peer, no
/// matter how many independent retry loops share it.
class RetryBudget {
 public:
  struct Options {
    double earn_per_fresh = 0.1;  // tokens earned per fresh request
    double burst = 8.0;           // bucket cap (and initial fill)
  };

  RetryBudget() : RetryBudget(Options()) {}
  explicit RetryBudget(Options options) : options_(options) {}

  /// The process-wide budget shared by RPC clients and the copier.
  static RetryBudget& global();

  /// Credits one fresh (non-retry) request toward `peer_key`.
  void note_fresh(std::uint64_t peer_key);

  /// Spends one token for a retry; false (and a bump of
  /// `retry.budget.exhausted`) when the peer's bucket is dry.
  bool acquire(std::uint64_t peer_key);

  /// Current balance (tests); new buckets start at `burst`.
  double tokens(std::uint64_t peer_key) const;

  /// Refills every bucket (tests).
  void reset();

 private:
  double& bucket_locked(std::uint64_t peer_key) REQUIRES(mu_);

  const Options options_;
  mutable Mutex mu_ ACQUIRED_BEFORE("MetricsRegistry::mu_");
  std::unordered_map<std::uint64_t, double> tokens_ GUARDED_BY(mu_);
};

}  // namespace griddles::fault
