#include "src/fault/retry.h"

#include "src/fault/plan.h"
#include "src/obs/metrics.h"

namespace griddles::fault {

Duration RetryPolicy::backoff(int attempt, std::uint64_t jitter_key) const {
  double seconds = to_seconds_d(initial_backoff);
  for (int i = 1; i < attempt; ++i) seconds *= multiplier;
  const double cap = to_seconds_d(max_backoff);
  if (seconds > cap) seconds = cap;

  const Plan* plan = armed();
  const std::uint64_t seed = plan != nullptr ? plan->seed() : 0;
  const std::uint64_t h =
      mix(seed, jitter_key, static_cast<std::uint64_t>(attempt), 0x7e7247ULL);
  // Map to [0.5, 1.0): full-jitter halves thundering herds while keeping
  // the schedule a pure function of (seed, key, attempt).
  const double factor = 0.5 + static_cast<double>(h >> 11) * 0x1.0p-54;
  return from_seconds_d(seconds * factor);
}

void note_retry_attempt() {
  static obs::Counter& attempts =
      obs::MetricsRegistry::global().counter("retry.attempts");
  attempts.add();
}

}  // namespace griddles::fault
