#include "src/fault/retry.h"

#include <algorithm>

#include "src/fault/plan.h"
#include "src/obs/metrics.h"

namespace griddles::fault {

Duration RetryPolicy::backoff(int attempt, std::uint64_t jitter_key) const {
  double seconds = to_seconds_d(initial_backoff);
  for (int i = 1; i < attempt; ++i) seconds *= multiplier;
  const double cap = to_seconds_d(max_backoff);
  if (seconds > cap) seconds = cap;

  const Plan* plan = armed();
  const std::uint64_t seed = plan != nullptr ? plan->seed() : 0;
  const std::uint64_t h =
      mix(seed, jitter_key, static_cast<std::uint64_t>(attempt), 0x7e7247ULL);
  // Map to [0.5, 1.0): full-jitter halves thundering herds while keeping
  // the schedule a pure function of (seed, key, attempt).
  const double factor = 0.5 + static_cast<double>(h >> 11) * 0x1.0p-54;
  return from_seconds_d(seconds * factor);
}

void note_retry_attempt() {
  static obs::Counter& attempts =
      obs::MetricsRegistry::global().counter("retry.attempts");
  attempts.add();
}

RetryBudget& RetryBudget::global() {
  static RetryBudget budget;
  return budget;
}

double& RetryBudget::bucket_locked(std::uint64_t peer_key) {
  const auto it = tokens_.find(peer_key);
  if (it != tokens_.end()) return it->second;
  return tokens_.emplace(peer_key, options_.burst).first->second;
}

void RetryBudget::note_fresh(std::uint64_t peer_key) {
  MutexLock lock(mu_);
  double& balance = bucket_locked(peer_key);
  balance = std::min(options_.burst, balance + options_.earn_per_fresh);
}

bool RetryBudget::acquire(std::uint64_t peer_key) {
  static obs::Counter& exhausted =
      obs::MetricsRegistry::global().counter("retry.budget.exhausted");
  bool granted;
  {
    MutexLock lock(mu_);
    double& balance = bucket_locked(peer_key);
    granted = balance >= 1.0;
    if (granted) balance -= 1.0;
  }
  if (!granted) exhausted.add();
  return granted;
}

double RetryBudget::tokens(std::uint64_t peer_key) const {
  MutexLock lock(mu_);
  const auto it = tokens_.find(peer_key);
  return it != tokens_.end() ? it->second : options_.burst;
}

void RetryBudget::reset() {
  MutexLock lock(mu_);
  tokens_.clear();
}

}  // namespace griddles::fault
