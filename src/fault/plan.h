// Deterministic fault injection (see DESIGN.md §7).
//
// A fault::Plan is a set of declarative rules parsed from a compact spec
// string (`workflow_cli --faults=...`). Layers that talk to the modelled
// network consult the armed plan at well-defined sites — one RPC about to
// leave a client, one message being priced by a LinkShaper, one copy
// chunk arriving, one Grid Buffer block being stored — and the plan
// answers "inject nothing / fail this / delay this / mutate this".
//
// Every answer is a pure function of (seed, rule, site key, occurrence
// count), so the same spec and seed replay the identical fault schedule
// run after run regardless of thread interleaving: the n-th write into
// channel C, or the n-th RPC from host A to host B, always gets the same
// decision. That is what makes recovery testable (tests assert the same
// outputs with and without the plan armed) and fault schedules shareable
// as one-line strings.
//
// When no plan is armed the hooks cost one relaxed atomic load — the
// bench acceptance criterion for shipping the hooks compiled in.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace griddles::fault {

/// What a rule does when it fires.
enum class Op : std::uint8_t {
  kDrop,      // fail the operation with kUnavailable (retryable)
  kDelay,     // add latency, then proceed
  kCrash,     // host is dead from `at=` onward: every RPC to it fails
  kTruncate,  // deliver a short copy chunk (detected, chunk is resent)
  kCorrupt,   // flip bits in a copy chunk (caught by the checksum pass)
  kPeerDeath, // Grid Buffer writer dies once the channel passes `after=`
  kPartition, // severs inter-replica GNS sync for a replica pair; model
              // window [at=, until=) — heals at `until=` (0 = while armed)
  kBurst,     // admission control accounts factor= times the real cost
              // in the model window [at=, until=) — synthetic overload
};

std::string_view op_name(Op op) noexcept;

/// Where a hook sits. The site picks the key vocabulary:
///   kRpc   — "src>dst" host pair of a client call
///   kLink  — "src>dst" host pair of a modelled link message
///   kCopy  — remote path of a staged-copy chunk
///   kPeer  — Grid Buffer channel name
///   kGns   — GNS replica name of one lookup attempt
///   kNws   — NWS probe target host
///   kRelay — host of a multicast relay hop (`die@relay:<host>` kills the
///            relay function once its cumulative forwarded bytes reach
///            `after=`; direct chunk service stays up, so the parent
///            adopts the subtree and the source repairs the host direct)
///   kGnsSync — "<a>-<b>" replica pair of one GNS peer-sync message
///            (replicate-forward or anti-entropy exchange). Spelled
///            `gns` in the grammar: `partition@gns:<a>-<b>` parses to
///            this site, so client lookups (kGns, keyed by one replica
///            name) are never severed by a partition rule.
///   kAdmission — site key of a server's AdmissionController. Spelled
///            `rpc` in the grammar: `burst@rpc:<key>` parses to this
///            site, so client-call rules (kRpc) never see burst state.
enum class Site : std::uint8_t {
  kRpc, kLink, kCopy, kPeer, kGns, kNws, kRelay, kGnsSync, kAdmission,
};

std::string_view site_name(Site site) noexcept;

/// One parsed rule, e.g. `drop@rpc:*>dione:p=0.5,count=2`.
struct Rule {
  Op op = Op::kDrop;
  Site site = Site::kRpc;
  std::string key_glob;  // matched against the consult key ('*'/'?')

  /// Firing discipline: `nth=` fires exactly on the n-th matching event
  /// (1-based) per key; otherwise each matching event fires with
  /// probability `p=` (seeded, per-event deterministic). Either way at
  /// most `count=` firings happen per key (truncate/corrupt default to a
  /// single firing so a retried transfer can succeed).
  double probability = 1.0;
  std::uint64_t nth = 0;
  std::uint64_t max_fires = std::numeric_limits<std::uint64_t>::max();

  double at_s = 0;            // crash/partition: model time it starts
  double until_s = 0;         // partition: model time it heals (0 = never)
  double delay_s = 0;         // delay: extra seconds to add
  std::uint64_t after_bytes = 0;  // peer death: channel high-water mark

  double burst_factor = 4.0;  // burst: admission cost multiplier

  /// corrupt: byte range to flip within the delivered chunk (`offset=`,
  /// `len=`), clamped to the chunk. Defaults mutate the first byte, which
  /// chunk-aligned checksums always catch; a mid-chunk range exercises
  /// the non-aligned path.
  std::uint64_t corrupt_offset = 0;
  std::uint64_t corrupt_len = 1;
};

/// A consult verdict.
struct Decision {
  enum class Action : std::uint8_t {
    kNone,
    kFail,      // drop/crash: fail with kUnavailable
    kDelay,     // proceed after `delay`
    kTruncate,  // deliver short data
    kCorrupt,   // deliver mutated data
    kKill,      // peer death: fail the channel permanently (kDataLoss)
    kSever,     // partition: this peer-sync message never arrives
    kBurst,     // overload: account factor x the real admission cost
  };
  Action action = Action::kNone;
  Duration delay = Duration::zero();
  double factor = 1.0;               // kBurst: admission cost multiplier
  std::uint64_t corrupt_offset = 0;  // kCorrupt: first byte to flip
  std::uint64_t corrupt_len = 1;     // kCorrupt: bytes to flip

  explicit operator bool() const noexcept {
    return action != Action::kNone;
  }
};

/// A parsed, immutable-by-rules fault plan with per-key occurrence state.
class Plan {
 public:
  /// Parses `spec`: `;`-separated segments, the first optionally
  /// `seed=<n>`, the rest `<op>@<site>:<key-glob>[:<k>=<v>,...]`.
  /// Grammar details in README "Fault injection".
  static Result<std::shared_ptr<Plan>> parse(const std::string& spec);

  Plan(std::uint64_t seed, std::vector<Rule> rules);

  std::uint64_t seed() const noexcept { return seed_; }
  const std::vector<Rule>& rules() const noexcept { return rules_; }

  /// The hook entry point: the `index`-th event with `key` at `site` just
  /// happened (`bytes` is the channel high-water mark for kPeer, unused
  /// elsewhere). Returns the injected action, records it in the injection
  /// log, and bumps `fault.injected.*`.
  Decision consult(Site site, std::string_view key, std::uint64_t bytes = 0);

  /// Model clock for `crash ... at=` rules; set when the plan is armed
  /// next to a testbed. Null means crash rules apply from time zero.
  void set_clock(const Clock* clock) noexcept {
    clock_.store(clock, std::memory_order_release);
  }
  const Clock* clock() const noexcept {
    return clock_.load(std::memory_order_acquire);
  }

  /// Every firing so far, one line per injection ("drop@rpc:a>b #3") —
  /// the byte-identical replay artifact the golden test compares.
  std::vector<std::string> injection_log() const;
  std::uint64_t injection_count() const;

 private:
  struct KeyState {
    std::uint64_t events = 0;  // consults that matched this (rule, key)
    std::uint64_t fires = 0;
  };

  const std::uint64_t seed_;
  const std::vector<Rule> rules_;
  std::atomic<const Clock*> clock_{nullptr};

  mutable Mutex mu_;
  // (rule index, key) -> occurrence counts.
  std::vector<std::map<std::string, KeyState, std::less<>>> state_
      GUARDED_BY(mu_);
  std::vector<std::string> log_ GUARDED_BY(mu_);
};

/// Arms `plan` process-wide (null disarms). `clock` lets model-time rules
/// (crash at=) see testbed time. The previous plan, if any, is released.
void arm(std::shared_ptr<Plan> plan, const Clock* clock = nullptr);
void disarm();

/// The armed plan, or null. One relaxed atomic load — THE fast path; the
/// pointer stays valid until the next arm()/disarm(), so callers must not
/// stash it across operations.
Plan* armed() noexcept;

/// Shared deterministic mixing (splitmix64-style); retry jitter uses it
/// too so backoff schedules replay with the plan.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                  std::uint64_t d) noexcept;

/// Sleeps `model` model-seconds of injected delay/backoff, scaled to wall
/// time by the armed plan's clock (1:1 when none is set). Used by the
/// hooks so injected latency shrinks with the testbed's time scale.
void sleep_for_model(Duration model);

}  // namespace griddles::fault
