#include "src/fault/plan.h"

#include <thread>

#include "src/common/bytes.h"
#include "src/common/strings.h"
#include "src/obs/metrics.h"

namespace griddles::fault {

namespace {
/// Process-wide injection accounting (handles cached once).
struct FaultMetrics {
  obs::Counter& drop;
  obs::Counter& delay;
  obs::Counter& crash;
  obs::Counter& truncate;
  obs::Counter& corrupt;
  obs::Counter& peer_death;
  obs::Counter& partition;
  obs::Counter& burst;

  static FaultMetrics& get() {
    auto& registry = obs::MetricsRegistry::global();
    static FaultMetrics metrics{
        registry.counter("fault.injected.drop"),
        registry.counter("fault.injected.delay"),
        registry.counter("fault.injected.crash"),
        registry.counter("fault.injected.truncate"),
        registry.counter("fault.injected.corrupt"),
        registry.counter("fault.injected.peer_death"),
        registry.counter("fault.injected.partition"),
        registry.counter("fault.injected.burst"),
    };
    return metrics;
  }

  obs::Counter& for_op(Op op) {
    switch (op) {
      case Op::kDrop: return drop;
      case Op::kDelay: return delay;
      case Op::kCrash: return crash;
      case Op::kTruncate: return truncate;
      case Op::kCorrupt: return corrupt;
      case Op::kPeerDeath: return peer_death;
      case Op::kPartition: return partition;
      case Op::kBurst: return burst;
    }
    return drop;
  }
};

// The armed plan: a shared_ptr keeps it alive, a raw atomic pointer makes
// the "is anything armed?" question one relaxed load.
Mutex g_arm_mu;
std::shared_ptr<Plan> g_armed_owner GUARDED_BY(g_arm_mu);
std::atomic<Plan*> g_armed{nullptr};
}  // namespace

std::string_view op_name(Op op) noexcept {
  switch (op) {
    case Op::kDrop: return "drop";
    case Op::kDelay: return "delay";
    case Op::kCrash: return "crash";
    case Op::kTruncate: return "truncate";
    case Op::kCorrupt: return "corrupt";
    case Op::kPeerDeath: return "die";
    case Op::kPartition: return "partition";
    case Op::kBurst: return "burst";
  }
  return "?";
}

std::string_view site_name(Site site) noexcept {
  switch (site) {
    case Site::kRpc: return "rpc";
    case Site::kLink: return "link";
    case Site::kCopy: return "copy";
    case Site::kPeer: return "peer";
    case Site::kGns: return "gns";
    case Site::kNws: return "nws";
    case Site::kRelay: return "relay";
    case Site::kGnsSync: return "gns";  // grammar: partition@gns:<a>-<b>
    case Site::kAdmission: return "rpc";  // grammar: burst@rpc:<key>
  }
  return "?";
}

std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                  std::uint64_t d) noexcept {
  // splitmix64 finalizer over a running combination of the inputs.
  std::uint64_t z = a;
  for (const std::uint64_t v : {b, c, d}) {
    z += 0x9e3779b97f4a7c15ULL + v;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
  }
  return z;
}

namespace {
std::uint64_t hash_text(std::string_view text) {
  return fnv1a(as_bytes_view(text));
}

Result<Op> parse_op(std::string_view name) {
  if (name == "drop") return Op::kDrop;
  if (name == "delay") return Op::kDelay;
  if (name == "crash") return Op::kCrash;
  if (name == "truncate") return Op::kTruncate;
  if (name == "corrupt") return Op::kCorrupt;
  if (name == "die") return Op::kPeerDeath;
  if (name == "partition") return Op::kPartition;
  if (name == "burst") return Op::kBurst;
  return invalid_argument(strings::cat("fault spec: unknown op '", name,
                                       "'"));
}

Result<Site> parse_site(std::string_view name) {
  if (name == "rpc") return Site::kRpc;
  if (name == "link") return Site::kLink;
  if (name == "copy") return Site::kCopy;
  if (name == "peer") return Site::kPeer;
  if (name == "gns") return Site::kGns;
  if (name == "nws") return Site::kNws;
  if (name == "relay") return Site::kRelay;
  if (name == "host") return Site::kRpc;  // crash@host keys on RPC dst
  return invalid_argument(strings::cat("fault spec: unknown site '", name,
                                       "'"));
}

Status apply_param(Rule& rule, std::string_view key, std::string_view value) {
  const auto number = strings::parse_double(value);
  if (!number) {
    return invalid_argument(strings::cat("fault spec: bad value '", value,
                                         "' for ", key));
  }
  if (key == "p") {
    if (*number < 0 || *number > 1) {
      return invalid_argument("fault spec: p must be in [0,1]");
    }
    rule.probability = *number;
  } else if (key == "nth") {
    rule.nth = static_cast<std::uint64_t>(*number);
  } else if (key == "count") {
    rule.max_fires = static_cast<std::uint64_t>(*number);
  } else if (key == "at") {
    rule.at_s = *number;
  } else if (key == "until") {
    rule.until_s = *number;
  } else if (key == "add") {
    rule.delay_s = *number;
  } else if (key == "after") {
    rule.after_bytes = static_cast<std::uint64_t>(*number);
  } else if (key == "factor") {
    if (*number < 1) {
      return invalid_argument("fault spec: factor must be >= 1");
    }
    rule.burst_factor = *number;
  } else if (key == "offset") {
    rule.corrupt_offset = static_cast<std::uint64_t>(*number);
  } else if (key == "len") {
    if (*number < 1) {
      return invalid_argument("fault spec: len must be >= 1");
    }
    rule.corrupt_len = static_cast<std::uint64_t>(*number);
  } else {
    return invalid_argument(strings::cat("fault spec: unknown param '", key,
                                         "'"));
  }
  return Status::ok();
}
}  // namespace

Result<std::shared_ptr<Plan>> Plan::parse(const std::string& spec) {
  std::uint64_t seed = 1;
  std::vector<Rule> rules;
  for (const std::string& raw : strings::split(spec, ';')) {
    const std::string segment(strings::trim(raw));
    if (segment.empty()) continue;
    if (strings::starts_with(segment, "seed=")) {
      const auto parsed = strings::parse_int(segment.substr(5));
      if (!parsed || *parsed < 0) {
        return invalid_argument(
            strings::cat("fault spec: bad seed in '", segment, "'"));
      }
      seed = static_cast<std::uint64_t>(*parsed);
      continue;
    }

    const std::size_t at = segment.find('@');
    const std::size_t head_end = segment.find(':');
    if (at == std::string::npos || head_end == std::string::npos ||
        at > head_end) {
      return invalid_argument(strings::cat(
          "fault spec: '", segment, "' is not <op>@<site>:<key>[:params]"));
    }
    Rule rule;
    GL_ASSIGN_OR_RETURN(rule.op, parse_op(segment.substr(0, at)));
    GL_ASSIGN_OR_RETURN(
        rule.site, parse_site(segment.substr(at + 1, head_end - at - 1)));
    // `partition@gns:<a>-<b>` severs peer sync (kGnsSync, keyed by the
    // replica pair), not client lookups — remap so a partition rule can
    // never make a lookup-site decision.
    if (rule.op == Op::kPartition) {
      if (rule.site != Site::kGns) {
        return invalid_argument(strings::cat(
            "fault spec: '", segment, "': partition only applies @gns"));
      }
      rule.site = Site::kGnsSync;
    }
    // `burst@rpc:<key>` injects synthetic overload into a server's
    // admission controller (Site::kAdmission, keyed by the server's
    // site key), not into client calls — remap so drop/delay@rpc rule
    // state is untouched by admission consults.
    if (rule.op == Op::kBurst) {
      if (rule.site != Site::kRpc) {
        return invalid_argument(strings::cat(
            "fault spec: '", segment, "': burst only applies @rpc"));
      }
      rule.site = Site::kAdmission;
    }

    // The tail after the last ':' is a param list; everything between
    // is the key glob (which may itself hold ':'). A trailing segment
    // with no '=' is malformed — accepting it as part of the glob
    // would silently swallow a mistyped param like ':p' for ':p=0.5'.
    std::string rest = segment.substr(head_end + 1);
    std::string params;
    const std::size_t last = rest.rfind(':');
    if (last != std::string::npos) {
      if (rest.find('=', last) == std::string::npos) {
        return invalid_argument(strings::cat(
            "fault spec: trailing ':", rest.substr(last + 1), "' in '",
            segment, "' is not a <param>=<value> list"));
      }
      params = rest.substr(last + 1);
      rest = rest.substr(0, last);
    }
    rule.key_glob = rest;
    if (rule.key_glob.empty()) {
      return invalid_argument(
          strings::cat("fault spec: '", segment, "' has an empty key"));
    }
    // Payload mutations default to firing once so a retried transfer
    // can complete; override with count=.
    if (rule.op == Op::kTruncate || rule.op == Op::kCorrupt ||
        rule.op == Op::kPeerDeath) {
      rule.max_fires = 1;
    }
    if (!params.empty()) {
      for (const std::string& pair : strings::split(params, ',')) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          return invalid_argument(
              strings::cat("fault spec: bad param '", pair, "'"));
        }
        GL_RETURN_IF_ERROR(apply_param(rule, strings::trim(
                                                 pair.substr(0, eq)),
                                       strings::trim(pair.substr(eq + 1))));
      }
    }
    rules.push_back(std::move(rule));
  }
  return std::make_shared<Plan>(seed, std::move(rules));
}

Plan::Plan(std::uint64_t seed, std::vector<Rule> rules)
    : seed_(seed), rules_(std::move(rules)) {
  MutexLock lock(mu_);
  state_.resize(rules_.size());
}

Decision Plan::consult(Site site, std::string_view key,
                       std::uint64_t bytes) {
  Decision decision;
  const Clock* clock = clock_.load(std::memory_order_acquire);
  MutexLock lock(mu_);
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const Rule& rule = rules_[r];
    if (rule.site != site) continue;
    if (!strings::glob_match(rule.key_glob, key)) continue;

    auto state_it = state_[r].find(key);
    if (state_it == state_[r].end()) {
      state_it = state_[r].emplace(std::string(key), KeyState{}).first;
    }
    KeyState& state = state_it->second;
    const std::uint64_t event = ++state.events;
    if (state.fires >= rule.max_fires) continue;

    bool fires;
    switch (rule.op) {
      case Op::kCrash:
        // Permanent from `at=` on; without a clock, from time zero.
        fires = clock == nullptr ||
                to_seconds_d(clock->now()) >= rule.at_s;
        break;
      case Op::kPeerDeath:
        // At control-plane sites `die` means the service is permanently
        // down (no bytes flow through a lookup or probe); elsewhere —
        // buffer channels and relay hops — it keys on the cumulative
        // byte high-water mark.
        fires = (site == Site::kGns || site == Site::kNws)
                    ? true
                    : bytes >= rule.after_bytes;
        break;
      case Op::kPartition:
      case Op::kBurst: {
        // Active during the model window [at=, until=); until=0 means
        // "while the plan is armed". Without a clock the window can't be
        // evaluated, so the rule fires whenever it is armed (tests heal
        // by disarming).
        if (clock == nullptr) {
          fires = true;
        } else {
          const double now = to_seconds_d(clock->now());
          fires = now >= rule.at_s &&
                  (rule.until_s <= 0 || now < rule.until_s);
        }
        break;
      }
      default:
        if (rule.nth != 0) {
          fires = event == rule.nth;
        } else if (rule.probability >= 1.0) {
          fires = true;
        } else {
          // Deterministic per-event coin: depends only on (seed, rule,
          // key, event ordinal), never on wall time or thread order.
          const std::uint64_t h =
              mix(seed_, r, hash_text(key), event);
          fires = static_cast<double>(h >> 11) * 0x1.0p-53 <
                  rule.probability;
        }
        break;
    }
    if (!fires) continue;

    // Crash state — and a dead control-plane service or relay — is
    // permanent, so don't count it against max_fires: every call to a
    // dead host (or lookup against a dead replica, or block through a
    // dead relay) must keep failing.
    const bool permanent =
        rule.op == Op::kCrash || rule.op == Op::kPartition ||
        rule.op == Op::kBurst ||
        (rule.op == Op::kPeerDeath &&
         (site == Site::kGns || site == Site::kNws ||
          site == Site::kRelay));
    if (!permanent) ++state.fires;
    FaultMetrics::get().for_op(rule.op).add();
    log_.push_back(strings::cat(op_name(rule.op), "@", site_name(site), ":",
                                key, " #", event));

    switch (rule.op) {
      case Op::kDrop:
      case Op::kCrash:
        decision.action = Decision::Action::kFail;
        return decision;
      case Op::kDelay:
        decision.action = Decision::Action::kDelay;
        decision.delay = from_seconds_d(rule.delay_s);
        return decision;
      case Op::kTruncate:
        decision.action = Decision::Action::kTruncate;
        return decision;
      case Op::kCorrupt:
        decision.action = Decision::Action::kCorrupt;
        decision.corrupt_offset = rule.corrupt_offset;
        decision.corrupt_len = rule.corrupt_len;
        return decision;
      case Op::kPeerDeath:
        decision.action = Decision::Action::kKill;
        return decision;
      case Op::kPartition:
        decision.action = Decision::Action::kSever;
        return decision;
      case Op::kBurst:
        decision.action = Decision::Action::kBurst;
        decision.factor = rule.burst_factor;
        return decision;
    }
  }
  return decision;
}

std::vector<std::string> Plan::injection_log() const {
  MutexLock lock(mu_);
  return log_;
}

std::uint64_t Plan::injection_count() const {
  MutexLock lock(mu_);
  return log_.size();
}

void arm(std::shared_ptr<Plan> plan, const Clock* clock) {
  MutexLock lock(g_arm_mu);
  if (plan) plan->set_clock(clock);
  g_armed.store(plan.get(), std::memory_order_release);
  g_armed_owner = std::move(plan);
}

void disarm() { arm(nullptr); }

Plan* armed() noexcept {
  return g_armed.load(std::memory_order_relaxed);
}

void sleep_for_model(Duration model) {
  const Plan* plan = armed();
  const Clock* clock = plan != nullptr ? plan->clock() : nullptr;
  const double scale =
      clock != nullptr ? clock->wall_seconds_per_model_second() : 1.0;
  const Duration wall = from_seconds_d(to_seconds_d(model) * scale);
  if (wall > Duration::zero()) std::this_thread::sleep_for(wall);
}

}  // namespace griddles::fault
