#!/usr/bin/env python3
"""Perf-trajectory gate: compare fresh bench JSON against baselines.

Each bench writes `BENCH_<name>.json` with a `times` object of headline
metrics in model seconds (see bench/table_common.h). Committed baselines
live in `bench/baselines/BENCH_<name>.json` — captured from a `--fast`
run on CI-class hardware. Because the benches report *model* time on a
scaled deterministic clock, run-to-run noise is small and a fixed
relative threshold is meaningful.

For every fresh file with a matching baseline, the gate fails (exit 1)
when any shared headline metric regresses by more than the threshold:

    fresh > baseline * (1 + tolerance)       # default tolerance 0.10

Improvements and new metrics never fail; a baseline metric missing from
the fresh run fails (a silently dropped measurement is a regression of
the measurement, which is exactly what this gate exists to catch).
Fresh files with no baseline are reported and skipped, so adding a bench
does not require a baseline in the same change.

Usage:
    python3 tools/bench_gate.py BENCH_table3.json [BENCH_*.json ...]
    python3 tools/bench_gate.py --baseline-dir bench/baselines --tolerance 0.10 ...
    python3 tools/bench_gate.py --self-test

Exit status: 0 all gated metrics within tolerance, 1 regression or
missing metric, 2 usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE_DIR = REPO / "bench" / "baselines"


def load_bench(path):
    """Reads one BENCH_*.json; returns (bench_name, times dict)."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    name = doc.get("bench")
    times = doc.get("times")
    if not isinstance(name, str) or not isinstance(times, dict):
        raise ValueError(f"{path}: missing 'bench' or 'times'")
    return name, {k: float(v) for k, v in times.items()}


def compare(name, baseline, fresh, tolerance):
    """Returns a list of failure strings (empty = metric set passes)."""
    failures = []
    for key in sorted(baseline):
        base = baseline[key]
        if key not in fresh:
            failures.append(
                f"{name}/{key}: present in baseline but missing from the "
                f"fresh run")
            continue
        got = fresh[key]
        limit = base * (1.0 + tolerance)
        if got > limit and got - base > 1e-12:
            pct = 100.0 * (got - base) / base if base != 0 else float("inf")
            failures.append(
                f"{name}/{key}: {got:.6g} vs baseline {base:.6g} "
                f"(+{pct:.1f}%, limit +{100 * tolerance:.0f}%)")
    return failures


def run_gate(fresh_paths, baseline_dir, tolerance):
    baseline_dir = pathlib.Path(baseline_dir)
    failures = []
    gated = 0
    for path in fresh_paths:
        try:
            name, fresh = load_bench(path)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"bench_gate: cannot read {path}: {error}",
                  file=sys.stderr)
            return 2
        base_path = baseline_dir / f"BENCH_{name}.json"
        if not base_path.exists():
            print(f"bench_gate: no baseline for '{name}' "
                  f"({base_path}) — skipped")
            continue
        try:
            base_name, baseline = load_bench(base_path)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"bench_gate: bad baseline {base_path}: {error}",
                  file=sys.stderr)
            return 2
        if base_name != name:
            print(f"bench_gate: baseline {base_path} names "
                  f"'{base_name}', expected '{name}'", file=sys.stderr)
            return 2
        gated += 1
        found = compare(name, baseline, fresh, tolerance)
        failures.extend(found)
        verdict = "FAIL" if found else "ok"
        print(f"bench_gate: {name}: {len(baseline)} gated metrics "
              f"[{verdict}]")
    for line in failures:
        print(f"bench_gate: REGRESSION {line}", file=sys.stderr)
    if gated == 0:
        print("bench_gate: nothing gated (no baselines matched)")
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# Self-test: synthetic baseline vs a 20% regression, an improvement, and
# a dropped metric — all three paths the gate must distinguish.
# ---------------------------------------------------------------------------

def self_test():
    import tempfile

    baseline = {"bench": "selftest",
                "times": {"gb_s": 100.0, "copy_s": 50.0, "local_s": 10.0}}

    def check(times, want_exit, label):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = pathlib.Path(tmp)
            (tmp / "baselines").mkdir()
            with open(tmp / "baselines" / "BENCH_selftest.json", "w",
                      encoding="utf-8") as fh:
                json.dump(baseline, fh)
            fresh_path = tmp / "BENCH_selftest.json"
            with open(fresh_path, "w", encoding="utf-8") as fh:
                json.dump({"bench": "selftest", "times": times}, fh)
            got = run_gate([str(fresh_path)], tmp / "baselines", 0.10)
            assert got == want_exit, (
                f"{label}: exit {got}, want {want_exit}")

    # Identical run passes.
    check(dict(baseline["times"]), 0, "identical")
    # 20% regression on one metric fails.
    check({"gb_s": 120.0, "copy_s": 50.0, "local_s": 10.0}, 1,
          "20% regression")
    # Within-tolerance drift (+5%) passes.
    check({"gb_s": 105.0, "copy_s": 50.0, "local_s": 10.0}, 0,
          "+5% drift")
    # Improvement passes.
    check({"gb_s": 80.0, "copy_s": 40.0, "local_s": 9.0}, 0, "improvement")
    # Dropped metric fails.
    check({"gb_s": 100.0, "copy_s": 50.0}, 1, "dropped metric")
    # Extra metric with no baseline entry passes.
    check({"gb_s": 100.0, "copy_s": 50.0, "local_s": 10.0,
           "new_s": 1.0}, 0, "new metric")

    # A fresh file with no baseline is skipped, not failed.
    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        (tmp / "baselines").mkdir()
        fresh_path = tmp / "BENCH_unbaselined.json"
        with open(fresh_path, "w", encoding="utf-8") as fh:
            json.dump({"bench": "unbaselined", "times": {"x": 1.0}}, fh)
        assert run_gate([str(fresh_path)], tmp / "baselines", 0.10) == 0

    print("bench_gate self-test OK")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", nargs="*", metavar="BENCH_*.json",
                        help="fresh bench JSON files to gate")
    parser.add_argument("--baseline-dir", default=str(DEFAULT_BASELINE_DIR),
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        metavar="FRAC",
                        help="allowed relative regression (default 0.10)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in synthetic-regression check")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.fresh:
        parser.error("at least one fresh BENCH_*.json is required "
                     "(or --self-test)")
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")
    return run_gate(args.fresh, args.baseline_dir, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
