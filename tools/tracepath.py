#!/usr/bin/env python3
"""Critical-path analysis over GriddLeS causal traces.

Input is the Chrome trace-event JSON written by `workflow_cli --spans=`
or `bench_* --spans=` (src/obs/span.h): one complete "X" event per span
with `args.trace_id` / `args.span_id` / `args.parent_id` carrying the
causal links (rendered as strings so 64-bit ids survive JSON doubles).

The tool rebuilds the span DAG for one trace (by default the trace whose
root span covers the most wall time), then computes the *critical path*
with the classic walk-back: starting from the root's end, repeatedly
step to the child span that finishes last before the cursor; wall time
not covered by any child is attributed to the span itself ("self time").
The result is a set of [start, end) segments, each owned by exactly one
span, that tile the root's duration — so the segment sum always equals
the measured wall time of the run.

Each segment is then bucketed by the owning span's kind:

    compute      workflow, stage, schedule, other
    buffer-wait  buffer_wait
    network      open, copy, chunk, rpc
    retry        retry, failover, recovery

which answers the §5 question directly: of the run's wall time, how much
was computation, how much was blocked on Grid Buffer backpressure, how
much was moving bytes, and how much was burned on fault recovery.

Usage:
    python3 tools/tracepath.py SPANS.json [--top K] [--json] [--trace ID]
    python3 tools/tracepath.py --self-test

`--json` prints a machine-readable report (embedded by the bench gate);
the default is a human top-K table. Exit status: 0 on success, 1 on a
malformed/empty trace file, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

# Span kind -> wall-time bucket. Must cover every name produced by
# span_kind_name() in src/obs/span.h; unknown kinds land in compute so
# new instrumentation degrades the attribution, not the tool.
KIND_BUCKET = {
    "workflow": "compute",
    "stage": "compute",
    "schedule": "compute",
    "other": "compute",
    "buffer_wait": "buffer-wait",
    "open": "network",
    "copy": "network",
    "chunk": "network",
    "rpc": "network",
    "relay": "network",
    "retry": "retry",
    "failover": "retry",
    "recovery": "retry",
    "shed": "retry",
    "deadline_expired": "retry",
}

BUCKETS = ("compute", "buffer-wait", "network", "retry")


class Span:
    __slots__ = ("span_id", "parent_id", "trace_id", "name", "kind",
                 "start", "end", "tid", "args", "children", "self_us")

    def __init__(self, event):
        args = event.get("args", {})
        self.span_id = str(args.get("span_id", "0"))
        self.parent_id = str(args.get("parent_id", "0"))
        self.trace_id = str(args.get("trace_id", "0"))
        self.name = event.get("name", "?")
        self.kind = event.get("cat", "other")
        self.start = float(event.get("ts", 0.0))        # microseconds
        self.end = self.start + float(event.get("dur", 0.0))
        self.tid = event.get("tid", 0)
        self.args = args
        self.children = []
        self.self_us = 0.0  # critical-path time attributed to this span

    @property
    def dur(self):
        return self.end - self.start

    def bucket(self):
        return KIND_BUCKET.get(self.kind, "compute")


def load_events(path):
    """Parses a trace file; returns the traceEvents list or raises."""
    with (sys.stdin if path == "-" else open(path, encoding="utf-8")) as fh:
        doc = json.load(fh)
    if isinstance(doc, dict):
        events = doc.get("traceEvents", [])
    elif isinstance(doc, list):  # bare-array form is also valid Chrome JSON
        events = doc
    else:
        raise ValueError("trace file is neither an object nor an array")
    return [e for e in events if e.get("ph") == "X"]


def build_traces(events):
    """Groups complete spans by trace_id -> {span_id: Span}."""
    traces = {}
    for event in events:
        span = Span(event)
        if span.trace_id == "0" or span.span_id == "0":
            continue
        traces.setdefault(span.trace_id, {})[span.span_id] = span
    return traces


def link_children(spans):
    """Wires up children lists; returns the roots (no parent in-trace)."""
    roots = []
    for span in spans.values():
        parent = spans.get(span.parent_id)
        if parent is not None and parent is not span:
            parent.children.append(span)
        else:
            roots.append(span)
    for span in spans.values():
        span.children.sort(key=lambda s: s.end)
    return sorted(roots, key=lambda s: s.dur, reverse=True)


def walk_back(span, cursor, segments, depth=0):
    """Attributes [span.start, cursor) across span and its children.

    Walks the cursor backwards from `cursor`: the latest-ending child
    under the cursor takes over (recursively), gaps between children
    belong to `span` itself. Every emitted segment is (start, end, span),
    and the segments exactly tile [span.start, cursor).
    """
    if depth > 400:  # defence against cyclic parent links in bad input
        segments.append((span.start, cursor, span))
        return
    remaining = [c for c in span.children if c.start < cursor]
    while cursor > span.start:
        under = [c for c in remaining if min(c.end, cursor) > c.start]
        if not under:
            segments.append((span.start, cursor, span))
            break
        child = max(under, key=lambda c: min(c.end, cursor))
        child_end = min(child.end, cursor)
        if child_end < cursor:
            segments.append((child_end, cursor, span))
        walk_back(child, child_end, segments, depth + 1)
        cursor = max(child.start, span.start)
        remaining.remove(child)


def analyze(spans, root):
    """Critical path for one root span; returns the report dict."""
    segments = []
    walk_back(root, root.end, segments)
    for start, end, span in segments:
        span.self_us += end - start
    buckets = {bucket: 0.0 for bucket in BUCKETS}
    for start, end, span in segments:
        buckets[span.bucket()] += end - start
    total_us = sum(end - start for start, end, _ in segments)
    contributors = sorted((s for s in spans.values() if s.self_us > 0),
                          key=lambda s: s.self_us, reverse=True)
    return {
        "trace_id": root.trace_id,
        "root": root.name,
        "wall_s": root.dur / 1e6,
        "critical_path_s": total_us / 1e6,
        "span_count": len(spans),
        "buckets_s": {k: v / 1e6 for k, v in buckets.items()},
        "top": [
            {
                "name": span.name,
                "kind": span.kind,
                "bucket": span.bucket(),
                "self_s": span.self_us / 1e6,
                "total_s": span.dur / 1e6,
            }
            for span in contributors
        ],
    }


def print_report(report, top_k):
    print(f"trace {report['trace_id']}: {report['root']}")
    print(f"  wall time          {report['wall_s']:.6f} s "
          f"({report['span_count']} spans)")
    print(f"  critical path      {report['critical_path_s']:.6f} s")
    for bucket in BUCKETS:
        seconds = report["buckets_s"][bucket]
        if report["critical_path_s"] > 0:
            share = 100.0 * seconds / report["critical_path_s"]
        else:
            share = 0.0
        print(f"    {bucket:<12} {seconds:>12.6f} s  {share:5.1f}%")
    print(f"  top {min(top_k, len(report['top']))} critical-path spans:")
    for entry in report["top"][:top_k]:
        print(f"    {entry['self_s']:>10.6f} s  [{entry['kind']}] "
              f"{entry['name']}")


# ---------------------------------------------------------------------------
# Self-test: a hand-built trace with a known critical path.
#
# Layout (times in microseconds; trace 1):
#   workflow [0, 1000)
#     stage A [0, 400)
#       rpc [100, 300)
#         retry [150, 250)
#     stage B [400, 1000)            (sequential after A)
#       buffer_wait [500, 900)
#       chunk [450, 480)             (overlaps, ends before the wait)
#
# Walk-back from 1000: stage B owns the [900,1000) gap, the wait owns
# [500,900), chunk owns [450,480) with stage B taking the [480,500) gap
# and its own [400,450) lead-in. Inside stage A: A owns [300,400) and
# [0,100), the rpc owns [250,300) and [100,150), the retry leaf owns all
# of [150,250). Expected buckets: compute = A(200) + B(170) = 370;
# buffer-wait = 400; network = rpc(100) + chunk(30) = 130; retry = 100.
# Segments tile [0,1000) exactly, so they sum to the root's wall time.
# ---------------------------------------------------------------------------

def _event(name, cat, ts, dur, span_id, parent_id, tid=1):
    return {
        "name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
        "pid": 1, "tid": tid,
        "args": {"trace_id": "1", "span_id": str(span_id),
                 "parent_id": str(parent_id)},
    }


SELF_TEST_EVENTS = [
    _event("workflow:selftest", "workflow", 0, 1000, 10, 0),
    _event("stage:a", "stage", 0, 400, 11, 10),
    _event("rpc:read", "rpc", 100, 200, 12, 11),
    _event("rpc.retry:a>b", "retry", 150, 100, 13, 12),
    _event("stage:b", "stage", 400, 600, 14, 10, tid=2),
    _event("gbuf.read_wait:pipe", "buffer_wait", 500, 400, 15, 14, tid=2),
    _event("chunk.fetch:/d", "chunk", 450, 30, 16, 14, tid=3),
]


def self_test():
    traces = build_traces(SELF_TEST_EVENTS)
    assert len(traces) == 1, "expected one trace"
    spans = traces["1"]
    roots = link_children(spans)
    assert len(roots) == 1 and roots[0].name == "workflow:selftest"
    report = analyze(spans, roots[0])

    def expect(label, got, want):
        assert abs(got - want) < 1e-9, f"{label}: got {got}, want {want}"

    expect("critical path == wall", report["critical_path_s"],
           report["wall_s"])
    expect("wall", report["wall_s"], 1000 / 1e6)
    expect("compute", report["buckets_s"]["compute"], 370 / 1e6)
    expect("buffer-wait", report["buckets_s"]["buffer-wait"], 400 / 1e6)
    expect("network", report["buckets_s"]["network"], 130 / 1e6)
    expect("retry", report["buckets_s"]["retry"], 100 / 1e6)
    top = report["top"]
    assert top[0]["name"] == "gbuf.read_wait:pipe", top[0]
    expect("top self", top[0]["self_s"], 400 / 1e6)

    # Round-trip through the JSON serializer the way CI consumes it.
    doc = json.loads(json.dumps({"displayTimeUnit": "ms",
                                 "traceEvents": SELF_TEST_EVENTS}))
    spans2 = build_traces(doc["traceEvents"])["1"]
    roots2 = link_children(spans2)
    report2 = analyze(spans2, roots2[0])
    assert report2 == report, "JSON round-trip changed the report"

    # An untraced event (trace_id 0) must be ignored, not crash.
    noisy = SELF_TEST_EVENTS + [_event("orphan", "rpc", 0, 10, 0, 0)]
    assert len(build_traces(noisy)["1"]) == len(spans)

    print("tracepath self-test OK")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("spans", nargs="?", help="Chrome trace JSON "
                        "from --spans= ('-' reads stdin)")
    parser.add_argument("--top", type=int, default=10, metavar="K",
                        help="rows in the top-span table (default 10)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    parser.add_argument("--trace", metavar="ID",
                        help="analyze this trace_id instead of the longest")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in golden-trace check")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.spans:
        parser.error("a spans file is required (or --self-test)")

    try:
        events = load_events(args.spans)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"tracepath: cannot read {args.spans}: {error}",
              file=sys.stderr)
        return 1

    traces = build_traces(events)
    if not traces:
        print("tracepath: no complete spans in input", file=sys.stderr)
        return 1

    if args.trace is not None:
        if args.trace not in traces:
            print(f"tracepath: trace {args.trace} not found "
                  f"(have: {', '.join(sorted(traces))})", file=sys.stderr)
            return 1
        chosen = [args.trace]
    else:
        # A trace rooted in a workflow span wins (that is the run);
        # among those, the longest. Standalone traces — a scheduler
        # search or background RPC that minted its own root — only
        # surface when no workflow trace exists or via --trace.
        def root_rank(trace_id):
            spans = traces[trace_id]
            roots = link_children(spans)
            if not roots:
                return (0, 0.0)
            return (1 if roots[0].kind == "workflow" else 0, roots[0].dur)
        chosen = [max(traces, key=root_rank)]
        # link_children already ran above; rebuild cleanly below.
        for spans in traces.values():
            for span in spans.values():
                span.children = []

    reports = []
    for trace_id in chosen:
        spans = traces[trace_id]
        roots = link_children(spans)
        if not roots:
            continue
        reports.append(analyze(spans, roots[0]))

    if not reports:
        print("tracepath: no analyzable roots", file=sys.stderr)
        return 1

    if args.json:
        out = reports[0] if len(reports) == 1 else reports
        json.dump(out, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        for report in reports:
            print_report(report, args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
