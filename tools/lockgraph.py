#!/usr/bin/env python3
"""Static lock-order analysis for GriddLeS.

Exploits the repo's locking conventions (enforced by tools/lint.py and
Clang's thread-safety analysis): every lock is a griddles::Mutex declared
as a class member or file-scope global, and every acquisition goes
through a scoped MutexLock. That makes "which locks can be held where"
tractable for a line-level scanner without a real C++ frontend:

  1. Scan src/ for classes, their Mutex/CondVar members, member types,
     file-scope Mutex globals, and ACQUIRED_BEFORE/ACQUIRED_AFTER
     annotations.
  2. Scan function bodies tracking the set of MutexLocks held at each
     statement (scope-accurate, including explicit unlock()/lock()).
     Lambda bodies are excluded: code in a lambda usually runs on
     another thread, after the enclosing locks are gone.
  3. Resolve calls made while locks are held (receiver type first, then
     unique-method-name with an STL-collision blocklist) and compute the
     transitive may-acquire set of every function to a fixpoint.
  4. Emit the directed graph "A held while acquiring B" with file:line
     witnesses; any cycle is a potential deadlock and fails the run.
  5. Flag blocking operations under a lock: RPC calls (RpcClient::call /
     call_until), remote::Copier chunk IO (fetch/push/*_attempt), clock
     sleeps (sleep_for/sleep_until/sleep_for_model), and CondVar waits.
     Justify deliberate sites (e.g. monitor-pattern waits, where the
     wait itself releases the mutex) with
         // lint: blocking-ok (<why>)
     on the same line or up to two lines above (so one comment can
     cover an if/else-if pair of waits).
  6. Validate ACQUIRED_BEFORE/ACQUIRED_AFTER declarations: their string
     arguments name graph nodes ("Class::mu_"); unknown names and
     orders contradicted by an observed edge fail the run.

Known limits (by design — the runtime detector in src/common/lockdep.h
covers what a static pass cannot): nodes are (class, member) pairs, not
instances; calls through type-erased receivers that resolve to nothing
are skipped; logging macros are invisible.

Run from the repo root:  python3 tools/lockgraph.py [--json X] [--dot X]
Self-check the checker:  python3 tools/lockgraph.py --self-test
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

KEYWORDS = {
    "if", "for", "while", "switch", "return", "else", "do", "catch",
    "sizeof", "new", "delete", "case", "default", "throw", "decltype",
    "alignof", "static_assert", "noexcept", "assert", "co_await",
    "co_return", "co_yield", "alignas", "typeid", "template", "requires",
}

# Method names too generic for unique-name call resolution: they collide
# with STL/std::filesystem methods or are defined on type-erased
# interfaces the receiver scan cannot pin down.
GENERIC_METHODS = {
    "string", "size", "count", "empty", "data", "begin", "end", "find",
    "erase", "insert", "substr", "c_str", "front", "back", "value", "get",
    "reset", "swap", "clear", "stop", "close", "open", "load", "store",
    "exchange", "join", "native", "read", "write", "seek", "tell",
    "flush", "describe", "ok", "status", "str", "at", "emplace",
    "push_back", "emplace_back", "pop_back", "resize", "reserve", "now",
    "min", "max", "abs", "move", "cat", "lock", "unlock", "try_lock",
    "notify_one", "notify_all", "run", "start", "init", "name",
}

SLEEP_METHODS = {"sleep_for", "sleep_until", "sleep_for_model"}
CV_WAIT_METHODS = {"wait", "wait_until"}
RPC_METHODS = {"call", "call_until"}
COPIER_METHODS = {"fetch", "push", "fetch_attempt", "push_attempt"}

BLOCKING_OK = re.compile(r"//\s*lint:\s*blocking-ok\b")

LAMBDA_TAIL = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\b\s*)?"
    r"(?:noexcept\b\s*)?(?:[A-Z_]{2,}\s*\([^()]*\)\s*)*"
    r"(?:->\s*[\w:<>,\s&*]+?)?\s*$")
CLASS_OPEN = re.compile(
    r"\b(?:class|struct)\s+(?:[A-Z_]+\s*\([^()]*\)\s*)*(\w+)\s*"
    r"(?:final\s*)?(?::[^:].*)?$")
FN_NAME = re.compile(r"(?:(\w+)\s*::\s*)?(~?\w+|operator\S{1,2})\s*\(")
MUTEX_MEMBER = re.compile(
    r"^(?:mutable\s+)?(?:griddles::)?Mutex\s+(\w+)\s*(.*)$")
GLOBAL_MUTEX = re.compile(r"^(?:griddles::)?Mutex\s+(\w+)\s*(.*)$")
MEMBER_DECL = re.compile(
    r"^(?:mutable\s+)?(?:const\s+)?([\w:]+(?:<[^;=]*>)?)\s*((?:[&*]|\s)*)"
    r"(\w+)\s*(?:=[^;]*|\{[^;]*)?$")
LOCAL_DECL = re.compile(
    r"(?:^|[;{(]\s*)(?:const\s+)?([\w:]+(?:<[^;=()]*>)?)[&*\s]+"
    r"(\w+)\s*(?:=|\()")
MUTEXLOCK = re.compile(r"\bMutexLock\s+(\w+)\s*\(\s*([^()]*?)\s*\)")
LOCK_TOGGLE = re.compile(r"\b(\w+)\s*\.\s*(lock|unlock)\s*\(\s*\)")
CALL = re.compile(r"(?:([\w\]\)]+(?:\.|->|::))+)?([\w~]+)\s*\(")
ACQ_ANN = re.compile(r"ACQUIRED_(BEFORE|AFTER)\s*\(([^()]*)\)")
ANN_TARGET = re.compile(r'"\s*([\w:]+)\s*"')


def preprocess(text: str) -> str:
    """Strips comments and neutralises literals, preserving line layout.

    String contents keep identifier-ish characters (ACQUIRED_BEFORE
    arguments survive) but lose braces/parens/semicolons so the brace
    tracker cannot be confused.
    """
    out: list[str] = []
    i, n = 0, len(text)
    mode = "code"
    while i < n:
        c = text[i]
        if mode == "code":
            nxt = text[i + 1] if i + 1 < n else ""
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
            elif c == "'":
                mode = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif mode == "line":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif mode == "block":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        elif mode == "str":
            if c == "\\" and i + 1 < n:
                out.append(" ")
                out.append("\n" if text[i + 1] == "\n" else " ")
                i += 2
                continue
            if c == '"':
                mode = "code"
                out.append('"')
            else:
                out.append(c if (c.isalnum() or c in "_:./-") else " ")
            i += 1
        else:  # chr
            if c == "\\" and i + 1 < n:
                out.append(" ")
                out.append("\n" if text[i + 1] == "\n" else " ")
                i += 2
                continue
            if c == "'":
                mode = "code"
            out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


class LockEvent:
    def __init__(self, var: str, expr: str, line: int, depth: int,
                 held: list["LockEvent"]):
        self.var = var
        self.expr = expr
        self.line = line
        self.depth = depth
        self.held = held  # events active at acquisition time
        self.active = True
        # Depth of a branch-local unlock(): the release happened inside
        # a nested block (usually ahead of an early return), so the lock
        # is still held on the fall-through path once that block closes.
        self.suspended_at: int | None = None
        self.node: str | None = None  # resolved later


class CallEvent:
    def __init__(self, receiver: str, name: str, line: int,
                 held: list[LockEvent]):
        self.receiver = receiver  # "" for bare calls; may end with "::"
        self.name = name
        self.line = line
        self.held = held


class Function:
    def __init__(self, key: str, cls: str | None, path: str, line: int):
        self.key = key
        self.cls = cls
        self.path = path
        self.line = line
        self.locals: dict[str, str] = {}
        self.lock_events: list[LockEvent] = []
        self.call_events: list[CallEvent] = []


class FileScan:
    """Single-pass scanner over one preprocessed source file."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.justified: set[int] = set()
        # A blocking-ok comment covers its own line and the next two, so
        # one comment ahead of an if/else-if wait pair covers both arms.
        for lineno, raw in enumerate(text.splitlines(), 1):
            if BLOCKING_OK.search(raw):
                self.justified.update((lineno, lineno + 1, lineno + 2))
        self.classes: set[str] = set()
        self.mutex_members: dict[str, set[str]] = {}
        self.member_types: dict[str, dict[str, str]] = {}
        self.global_mutexes: set[str] = set()
        # (class-or-None, member, direction, [targets], line)
        self.annotations: list[tuple] = []
        self.functions: list[Function] = []
        self._scan(preprocess(text))

    # -- scanning -----------------------------------------------------

    def _scan(self, clean: str) -> None:
        depth = 0
        line = 1
        chunk = ""
        chunk_line = 1
        # (kind, name, inner_depth); kinds: namespace class function
        # lambda block
        stack: list[tuple[str, object, int]] = []

        def current(kind: str):
            for entry in reversed(stack):
                if entry[0] == kind:
                    return entry
            return None

        def innermost_kind() -> str:
            return stack[-1][0] if stack else "file"

        def in_lambda_over_function() -> bool:
            for entry in reversed(stack):
                if entry[0] == "lambda":
                    return True
                if entry[0] == "function":
                    return False
            return False

        for c in clean:
            self._current_depth = depth
            if c == "\n":
                line += 1
                chunk += c
                continue
            if c == "{":
                kind, name = self._classify(chunk, stack)
                fn_entry = current("function")
                # Process the text ahead of the brace: for a plain block
                # that's the controlling statement; for a lambda it's the
                # call the lambda is being passed to (the lambda *body*
                # is excluded — it usually runs later, elsewhere).
                if (fn_entry is not None
                        and kind in ("block", "lambda")
                        and not in_lambda_over_function()):
                    self._statement(fn_entry[1], chunk, chunk_line)
                if kind == "function":
                    fn = Function(name[0], name[1], self.path,
                                  chunk_line + chunk.count("\n"))
                    self.functions.append(fn)
                    stack.append(("function", fn, depth + 1))
                else:
                    stack.append((kind, name, depth + 1))
                depth += 1
                chunk = ""
                chunk_line = line
                continue
            if c == "}":
                depth -= 1
                while stack and stack[-1][2] > depth:
                    stack.pop()
                fn_entry = current("function")
                if fn_entry is not None:
                    for ev in fn_entry[1].lock_events:
                        if ev.active and ev.depth > depth:
                            ev.active = False
                        elif (not ev.active
                              and ev.suspended_at is not None
                              and ev.depth <= depth < ev.suspended_at):
                            ev.active = True
                            ev.suspended_at = None
                chunk = ""
                chunk_line = line
                continue
            if c == ";":
                kind = innermost_kind()
                if kind == "function":
                    if not in_lambda_over_function():
                        self._statement(stack[-1][1], chunk, chunk_line)
                elif kind == "class":
                    self._member(stack[-1][1], chunk, chunk_line)
                elif kind in ("namespace", "file"):
                    self._global(chunk, chunk_line)
                elif kind == "lambda":
                    pass  # deferred execution: no events
                else:  # block inside a function, or stray
                    fn_entry = current("function")
                    if (fn_entry is not None
                            and not in_lambda_over_function()):
                        self._statement(fn_entry[1], chunk, chunk_line)
                chunk = ""
                chunk_line = line
                continue
            if not chunk.strip():
                chunk = ""
                chunk_line = line
            chunk += c

    def _classify(self, chunk: str,
                  stack: list[tuple]) -> tuple[str, object]:
        text = chunk.strip()
        inner = stack[-1][0] if stack else "file"
        in_function = any(e[0] in ("function", "lambda") for e in stack)
        if in_function:
            if LAMBDA_TAIL.search(text):
                return "lambda", None
            return "block", None
        if "namespace" in text.split():
            return "namespace", text.split()[-1]
        m = CLASS_OPEN.search(text)
        if m and "enum" not in text.split():
            name = m.group(1)
            self.classes.add(name)
            self.mutex_members.setdefault(name, set())
            self.member_types.setdefault(name, {})
            return "class", name
        if LAMBDA_TAIL.search(text):
            return "lambda", None
        for fm in FN_NAME.finditer(text):
            cls, fname = fm.group(1), fm.group(2)
            if fname in KEYWORDS or cls in KEYWORDS:
                continue
            if cls is None and inner == "class":
                cls = stack[-1][1]
            if cls is not None:
                return "function", (f"{cls}::{fname}", cls)
            return "function", (fname, None)
        return "block", None

    # -- statement-level extraction -----------------------------------

    def _statement(self, fn: Function, chunk: str, chunk_line: int) -> None:
        def line_of(pos: int) -> int:
            return chunk_line + chunk[:pos].count("\n")

        consumed: list[tuple[int, int]] = []
        for m in MUTEXLOCK.finditer(chunk):
            held = [e for e in fn.lock_events if e.active]
            ev = LockEvent(m.group(1), m.group(2), line_of(m.start()),
                           self._current_depth, held)
            fn.lock_events.append(ev)
            consumed.append(m.span())
        for m in LOCK_TOGGLE.finditer(chunk):
            var, op = m.group(1), m.group(2)
            for ev in reversed(fn.lock_events):
                if ev.var == var:
                    if op == "lock":
                        ev.active = True
                        ev.suspended_at = None
                    else:
                        ev.active = False
                        ev.suspended_at = (self._current_depth
                                           if self._current_depth > ev.depth
                                           else None)
                    consumed.append(m.span())
                    break
        for m in LOCAL_DECL.finditer(chunk):
            if m.group(1) not in KEYWORDS:
                fn.locals.setdefault(m.group(2), m.group(1))
        for m in CALL.finditer(chunk):
            if any(s <= m.start() < e for s, e in consumed):
                continue
            name = m.group(2)
            if name in KEYWORDS or name == "MutexLock":
                continue
            receiver = (m.group(1) or "").rstrip(".->")
            if receiver.endswith(":"):
                receiver = receiver.rstrip(":") + "::"
            held = [e for e in fn.lock_events if e.active]
            fn.call_events.append(
                CallEvent(receiver, name, line_of(m.start()), held))

    # Brace depth at the statement being processed; maintained by _scan
    # so lock lifetimes can expire on scope exit.
    _current_depth = 0

    # -- declaration-level extraction ---------------------------------

    def _member(self, cls: str, chunk: str, chunk_line: int) -> None:
        text = " ".join(chunk.split())
        text = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "",
                      text)
        m = MUTEX_MEMBER.match(text)
        if m:
            self.mutex_members.setdefault(cls, set()).add(m.group(1))
            self._annotations(cls, m.group(1), m.group(2), chunk_line)
            return
        m = MEMBER_DECL.match(text)
        if m and m.group(1) not in KEYWORDS:
            self.member_types.setdefault(cls, {})[m.group(3)] = m.group(1)

    def _global(self, chunk: str, chunk_line: int) -> None:
        text = " ".join(chunk.split())
        m = GLOBAL_MUTEX.match(text)
        if m:
            self.global_mutexes.add(m.group(1))
            self._annotations(None, m.group(1), m.group(2), chunk_line)

    def _annotations(self, cls: str | None, member: str, trailing: str,
                     line: int) -> None:
        for m in ACQ_ANN.finditer(trailing):
            targets = ANN_TARGET.findall(m.group(2))
            if targets:
                self.annotations.append(
                    (cls, member, m.group(1), targets, line))


class Analysis:
    """Cross-file lock-order analysis over a set of FileScans."""

    def __init__(self, scans: list[FileScan]):
        self.scans = scans
        self.classes: set[str] = set()
        self.mutex_members: dict[str, set[str]] = {}
        self.member_types: dict[str, dict[str, str]] = {}
        self.global_mutexes: dict[str, str] = {}  # name -> defining file
        self.methods_by_name: dict[str, set[str]] = {}
        self.functions: dict[str, list[Function]] = {}
        for scan in scans:
            self.classes |= scan.classes
            for cls, members in scan.mutex_members.items():
                self.mutex_members.setdefault(cls, set()).update(members)
            for cls, types in scan.member_types.items():
                self.member_types.setdefault(cls, {}).update(types)
            for g in scan.global_mutexes:
                self.global_mutexes.setdefault(g, scan.path)
            for fn in scan.functions:
                self.functions.setdefault(fn.key, []).append(fn)
                name = fn.key.split("::")[-1]
                if fn.cls is not None:
                    self.methods_by_name.setdefault(name, set()).add(fn.cls)
        self.nodes: set[str] = set()
        for cls, members in self.mutex_members.items():
            for m in members:
                self.nodes.add(f"{cls}::{m}")
        self.nodes.update(self.global_mutexes)
        # edge -> list of witness strings
        self.edges: dict[tuple[str, str], list[str]] = {}
        self.declared: dict[tuple[str, str], str] = {}
        self.errors: list[str] = []
        self.blocking: list[str] = []
        self.justified_blocking: list[str] = []
        self._resolve_locks()
        self._fixpoint()
        self._collect_edges()
        self._check_blocking()
        self._check_annotations()
        self.cycles = self._find_cycles()

    # -- resolution ---------------------------------------------------

    def _resolve_type(self, raw: str | None) -> str | None:
        if not raw:
            return None
        hits = [t for t in re.findall(r"[A-Za-z_]\w*", raw)
                if t in self.classes]
        return hits[-1] if hits else None

    def _resolve_lock_expr(self, expr: str, fn: Function) -> str | None:
        expr = expr.strip()
        if not expr:
            return None
        if "." in expr or "->" in expr:
            m = re.match(r"^(.*?)(?:\.|->)(\w+)$", expr)
            if not m:
                return None
            recv, member = m.group(1), m.group(2)
            rid = re.findall(r"\w+", recv)
            rtype = None
            if rid:
                rtype = fn.locals.get(rid[-1])
                if rtype is None and fn.cls is not None:
                    rtype = self.member_types.get(fn.cls, {}).get(rid[-1])
            cls = self._resolve_type(rtype)
            if cls and member in self.mutex_members.get(cls, set()):
                return f"{cls}::{member}"
            return None
        if "::" in expr:
            return expr if expr in self.nodes else None
        if (fn.cls is not None
                and expr in self.mutex_members.get(fn.cls, set())):
            return f"{fn.cls}::{expr}"
        if expr in self.global_mutexes:
            return expr
        return None

    def _resolve_locks(self) -> None:
        for fns in self.functions.values():
            for fn in fns:
                for ev in fn.lock_events:
                    ev.node = self._resolve_lock_expr(ev.expr, fn)
                    if ev.node is None:
                        self.errors.append(
                            f"{fn.path}:{ev.line}: cannot resolve lock "
                            f"expression '{ev.expr}' in {fn.key} — use a "
                            "member Mutex, a typed member/local path, or "
                            "a file-scope global")

    def _resolve_call(self, call: CallEvent,
                      fn: Function) -> tuple[str | None, str | None]:
        """Returns (class-or-None, function-key-or-None)."""
        name = call.name
        recv = call.receiver
        if recv.endswith("::"):
            cls = recv[:-2].split("::")[-1]
            if cls in self.classes:
                return cls, self._fn_key(cls, name)
            return None, name if name in self.functions else None
        if recv in ("", "this"):
            if (fn.cls is not None
                    and fn.cls in self.methods_by_name.get(name, set())):
                return fn.cls, self._fn_key(fn.cls, name)
            if name in self.functions:
                return None, name
            return self._unique(name)
        rid = re.findall(r"\w+", recv)
        rtype = None
        if rid:
            rtype = fn.locals.get(rid[-1])
            if rtype is None and fn.cls is not None:
                rtype = self.member_types.get(fn.cls, {}).get(rid[-1])
        cls = self._resolve_type(rtype)
        if cls is not None:
            key = self._fn_key(cls, name)
            if key is not None:
                return cls, key
            if name in CV_WAIT_METHODS or name in RPC_METHODS or \
                    name in COPIER_METHODS:
                return cls, None  # class known, body external/none
        return self._unique(name)

    def _fn_key(self, cls: str, name: str) -> str | None:
        key = f"{cls}::{name}"
        return key if key in self.functions else None

    def _unique(self, name: str) -> tuple[str | None, str | None]:
        if name in GENERIC_METHODS:
            return None, None
        owners = self.methods_by_name.get(name, set())
        if len(owners) == 1:
            cls = next(iter(owners))
            return cls, self._fn_key(cls, name)
        return None, None

    # -- transitive may-acquire --------------------------------------

    def _fixpoint(self) -> None:
        # key -> {node: witness}
        self.may_acquire: dict[str, dict[str, str]] = {}
        resolved_calls: dict[str, set[str]] = {}
        for key, fns in self.functions.items():
            acq: dict[str, str] = {}
            callees: set[str] = set()
            for fn in fns:
                for ev in fn.lock_events:
                    if ev.node is not None:
                        acq.setdefault(ev.node, f"{fn.path}:{ev.line}")
                for call in fn.call_events:
                    _, target = self._resolve_call(call, fn)
                    if target is not None and target != key:
                        callees.add(target)
            self.may_acquire[key] = acq
            resolved_calls[key] = callees
        changed = True
        while changed:
            changed = False
            for key, callees in resolved_calls.items():
                acq = self.may_acquire[key]
                for target in callees:
                    for node, wit in self.may_acquire.get(target,
                                                          {}).items():
                        if node not in acq:
                            acq[node] = wit
                            changed = True

    # -- edges, blocking, annotations, cycles -------------------------

    def _add_edge(self, a: str, b: str, witness: str) -> None:
        self.edges.setdefault((a, b), [])
        if len(self.edges[(a, b)]) < 3:
            self.edges[(a, b)].append(witness)

    def _collect_edges(self) -> None:
        for key, fns in self.functions.items():
            for fn in fns:
                for ev in fn.lock_events:
                    if ev.node is None:
                        continue
                    for held in ev.held:
                        if held.node is None:
                            continue
                        self._add_edge(
                            held.node, ev.node,
                            f"{fn.path}:{ev.line} {fn.key} acquires "
                            f"{ev.node} while holding {held.node}")
                for call in fn.call_events:
                    if not call.held:
                        continue
                    _, target = self._resolve_call(call, fn)
                    if target is None or target == key:
                        continue
                    for node, wit in self.may_acquire.get(target,
                                                          {}).items():
                        for held in call.held:
                            if held.node is None:
                                continue
                            self._add_edge(
                                held.node, node,
                                f"{fn.path}:{call.line} {fn.key} calls "
                                f"{target} which acquires {node} "
                                f"({wit})")

    def _blocking_category(self, call: CallEvent,
                           fn: Function) -> str | None:
        name = call.name
        if name in SLEEP_METHODS:
            return "sleep"
        cls, _ = self._resolve_call(call, fn)
        rid = re.findall(r"\w+", call.receiver)
        tail = rid[-1].lower() if rid else ""
        if name in CV_WAIT_METHODS:
            rtype = None
            if rid:
                rtype = fn.locals.get(rid[-1])
                if rtype is None and fn.cls is not None:
                    rtype = self.member_types.get(fn.cls, {}).get(rid[-1])
            if cls == "CondVar" or "CondVar" in (rtype or "") or \
                    "cv" in tail:
                return "condvar-wait"
            return None
        if name in RPC_METHODS:
            if cls == "RpcClient" or "client" in tail or "rpc" in tail:
                return "rpc"
            return None
        if name in COPIER_METHODS:
            if cls == "Copier" or "copier" in tail:
                return "copier-io"
            return None
        return None

    def _check_blocking(self) -> None:
        scans_by_path = {s.path: s for s in self.scans}
        for fns in self.functions.values():
            for fn in fns:
                scan = scans_by_path[fn.path]
                for call in fn.call_events:
                    held = [e.node for e in call.held
                            if e.node is not None]
                    if not held:
                        continue
                    category = self._blocking_category(call, fn)
                    if category is None:
                        continue
                    desc = (f"{fn.path}:{call.line} [{category}] "
                            f"{fn.key} calls "
                            f"{call.receiver + '.' if call.receiver else ''}"
                            f"{call.name}() while holding "
                            f"{', '.join(sorted(set(held)))}")
                    if call.line in scan.justified:
                        self.justified_blocking.append(desc)
                    else:
                        self.blocking.append(
                            desc + " — release the lock across the "
                            "blocking operation or justify with "
                            "'// lint: blocking-ok (<why>)'")

    def _check_annotations(self) -> None:
        for scan in self.scans:
            for cls, member, direction, targets, line in scan.annotations:
                self_node = f"{cls}::{member}" if cls else member
                if self_node not in self.nodes:
                    self.errors.append(
                        f"{scan.path}:{line}: ACQUIRED_{direction} on "
                        f"unknown lock node '{self_node}'")
                    continue
                for target in targets:
                    if target not in self.nodes:
                        self.errors.append(
                            f"{scan.path}:{line}: ACQUIRED_{direction}"
                            f"(\"{target}\") names an unknown lock node "
                            f"(known: Class::member or global name)")
                        continue
                    if direction == "BEFORE":
                        first, second = self_node, target
                    else:
                        first, second = target, self_node
                    reverse = (second, first)
                    if reverse in self.edges:
                        self.errors.append(
                            f"{scan.path}:{line}: declared order "
                            f"{first} -> {second} contradicted by "
                            f"observed edge {second} -> {first} "
                            f"({self.edges[reverse][0]})")
                    self.declared[(first, second)] = (
                        f"{scan.path}:{line} ACQUIRED_{direction} "
                        "declaration")

    def _find_cycles(self) -> list[dict]:
        graph: dict[str, set[str]] = {}
        combined: dict[tuple[str, str], list[str]] = {}
        for (a, b), wits in self.edges.items():
            graph.setdefault(a, set()).add(b)
            combined.setdefault((a, b), []).extend(wits)
        for (a, b), wit in self.declared.items():
            graph.setdefault(a, set()).add(b)
            combined.setdefault((a, b), []).append(wit)
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]

        def strongconnect(v: str) -> None:
            work = [(v, iter(sorted(graph.get(v, set()))))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(graph.get(w,
                                                              set())))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    sccs.append(scc)

        for v in sorted(graph):
            if v not in index:
                strongconnect(v)

        cycles = []
        for scc in sccs:
            members = set(scc)
            if len(scc) == 1:
                v = scc[0]
                if v not in graph.get(v, set()):
                    continue
            witnesses = []
            for (a, b), wits in sorted(combined.items()):
                if a in members and b in members:
                    for w in wits:
                        witnesses.append(f"{a} -> {b}: {w}")
            cycles.append({"locks": sorted(members),
                           "witnesses": witnesses})
        return cycles

    # -- output -------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "nodes": sorted(self.nodes),
            "edges": [
                {"from": a, "to": b, "witnesses": wits}
                for (a, b), wits in sorted(self.edges.items())
            ],
            "declared_orders": [
                {"from": a, "to": b, "source": src}
                for (a, b), src in sorted(self.declared.items())
            ],
            "cycles": self.cycles,
            "blocking_under_lock": self.blocking,
            "justified_blocking": sorted(self.justified_blocking),
            "errors": self.errors,
        }

    def to_dot(self) -> str:
        lines = ["digraph lockorder {", "  rankdir=LR;",
                 "  node [shape=box, fontname=\"monospace\"];"]
        cycle_nodes = {n for c in self.cycles for n in c["locks"]}
        for node in sorted(self.nodes):
            attrs = ""
            if node in cycle_nodes:
                attrs = " [color=red, penwidth=2]"
            lines.append(f'  "{node}"{attrs};')
        for (a, b), wits in sorted(self.edges.items()):
            label = wits[0].split(" ")[0] if wits else ""
            lines.append(f'  "{a}" -> "{b}" [label="{label}"];')
        for (a, b) in sorted(self.declared):
            if (a, b) not in self.edges:
                lines.append(f'  "{a}" -> "{b}" [style=dashed, '
                             'label="declared"];')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def findings(self) -> list[str]:
        out = list(self.errors)
        out.extend(self.blocking)
        for cycle in self.cycles:
            out.append("potential deadlock: lock-order cycle among {"
                       + ", ".join(cycle["locks"]) + "}")
            out.extend("  " + w for w in cycle["witnesses"])
        return out


def analyze(files: dict[str, str]) -> Analysis:
    return Analysis([FileScan(path, text)
                     for path, text in sorted(files.items())])


def load_repo_files() -> dict[str, str]:
    files: dict[str, str] = {}
    for pattern in ("*.h", "*.cc"):
        for path in sorted((REPO / "src").rglob(pattern)):
            files[str(path.relative_to(REPO))] = path.read_text()
    return files


# ---------------------------------------------------------------------
# Self-test: the analysis must flag seeded bugs and stay silent on
# idiomatic code, or the ctest is vacuous.

SELFTEST_CYCLE = {
    "src/st/a.h": """
#pragma once
class Alpha {
 public:
  void lift();
  void drop();
 private:
  Mutex mu_;
  int v_ GUARDED_BY(mu_);
};
class Beta {
 public:
  void pull();
  void nudge();
 private:
  Mutex mu_;
  int v_ GUARDED_BY(mu_);
};
""",
    "src/st/a.cc": """
#include "src/st/a.h"
void Alpha::lift() {
  MutexLock lock(mu_);
  Beta b;
  b.nudge();
}
void Alpha::drop() {
  MutexLock lock(mu_);
}
void Beta::pull() {
  MutexLock lock(mu_);
  Alpha a;
  a.drop();
}
void Beta::nudge() {
  MutexLock lock(mu_);
}
""",
}

SELFTEST_BLOCKING = {
    "src/st/b.h": """
#pragma once
class Pacer {
 public:
  void slow();
  void fine();
 private:
  Mutex mu_;
  int v_ GUARDED_BY(mu_);
};
""",
    "src/st/b.cc": """
#include "src/st/b.h"
void Pacer::slow() {
  MutexLock lock(mu_);
  clock.sleep_for(delay);
}
void Pacer::fine() {
  MutexLock lock(mu_);
  lock.unlock();
  clock.sleep_for(delay);
}
""",
}

SELFTEST_JUSTIFIED = {
    "src/st/c.h": """
#pragma once
class Waiter {
 public:
  void park();
 private:
  Mutex mu_;
  CondVar cv_;
  bool ready_ GUARDED_BY(mu_);
};
""",
    "src/st/c.cc": """
#include "src/st/c.h"
void Waiter::park() {
  MutexLock lock(mu_);
  while (!ready_) {
    // lint: blocking-ok (monitor wait: releases mu_ while blocked)
    cv_.wait(mu_);
  }
}
""",
}

SELFTEST_LAMBDA = {
    "src/st/d.h": """
#pragma once
class Spawner {
 public:
  void kick();
  void grab();
 private:
  Mutex mu_;
  int v_ GUARDED_BY(mu_);
};
class Target {
 public:
  void poke();
 private:
  Mutex mu_;
  int v_ GUARDED_BY(mu_);
};
""",
    "src/st/d.cc": """
#include "src/st/d.h"
void Spawner::kick() {
  MutexLock lock(mu_);
  workers_.emplace_back([this] {
    Target t;
    t.poke();
  });
}
void Target::poke() {
  MutexLock lock(mu_);
  Spawner s;
  s.grab();
}
void Spawner::grab() {
  MutexLock lock(mu_);
}
""",
}

SELFTEST_ANNOTATION = {
    "src/st/e.h": """
#pragma once
class Outer {
 public:
  void step();
 private:
  Mutex mu_ ACQUIRED_AFTER("Inner::mu_");
  int v_ GUARDED_BY(mu_);
};
class Inner {
 public:
  void tick();
 private:
  Mutex mu_;
  int v_ GUARDED_BY(mu_);
};
""",
    "src/st/e.cc": """
#include "src/st/e.h"
void Outer::step() {
  MutexLock lock(mu_);
  Inner i;
  i.tick();
}
void Inner::tick() {
  MutexLock lock(mu_);
}
""",
}

SELFTEST_CLEAN = {
    "src/st/f.h": """
#pragma once
class Upper {
 public:
  void go();
 private:
  Mutex mu_ ACQUIRED_BEFORE("Lower::mu_");
  int v_ GUARDED_BY(mu_);
};
class Lower {
 public:
  void leaf();
 private:
  Mutex mu_;
  int v_ GUARDED_BY(mu_);
};
""",
    "src/st/f.cc": """
#include "src/st/f.h"
void Upper::go() {
  MutexLock lock(mu_);
  Lower l;
  l.leaf();
}
void Lower::leaf() {
  MutexLock lock(mu_);
}
""",
}


def self_test() -> int:
    ok = True

    def expect(cond: bool, what: str) -> None:
        nonlocal ok
        if not cond:
            print(f"self-test: FAILED: {what}")
            ok = False

    a = analyze(SELFTEST_CYCLE)
    expect(len(a.cycles) == 1, "seeded Alpha/Beta cycle not detected")
    if a.cycles:
        expect(sorted(a.cycles[0]["locks"]) ==
               ["Alpha::mu_", "Beta::mu_"],
               f"wrong cycle members: {a.cycles[0]['locks']}")
        expect(any("a.cc" in w for w in a.cycles[0]["witnesses"]),
               "cycle witnesses missing file:line")

    a = analyze(SELFTEST_BLOCKING)
    expect(len(a.blocking) == 1,
           f"sleep-under-lock not flagged exactly once: {a.blocking}")
    expect(not a.cycles, "false cycle in blocking self-test")

    a = analyze(SELFTEST_JUSTIFIED)
    expect(not a.blocking,
           f"justified CondVar wait still flagged: {a.blocking}")
    expect(len(a.justified_blocking) == 1,
           "justified wait not recorded as justified")

    a = analyze(SELFTEST_LAMBDA)
    expect(not a.cycles,
           f"lambda body treated as running under the lock: {a.cycles}")

    a = analyze(SELFTEST_ANNOTATION)
    expect(any("contradicted" in e for e in a.errors),
           f"ACQUIRED_AFTER contradiction not detected: {a.errors}")

    a = analyze(SELFTEST_CLEAN)
    expect(not a.findings(),
           f"false findings on clean input: {a.findings()}")
    expect(("Upper::mu_", "Lower::mu_") in a.edges,
           "clean nesting edge missing from graph")

    print("self-test " + ("passed" if ok else "FAILED"))
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="verify detection on seeded bugs")
    parser.add_argument("--json", metavar="PATH",
                        help="write the lock graph as JSON ('-' stdout)")
    parser.add_argument("--dot", metavar="PATH",
                        help="write the lock graph as DOT ('-' stdout)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args()
    if args.self_test:
        return self_test()

    analysis = analyze(load_repo_files())

    if args.json:
        payload = json.dumps(analysis.to_json(), indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            pathlib.Path(args.json).write_text(payload)
    if args.dot:
        if args.dot == "-":
            sys.stdout.write(analysis.to_dot())
        else:
            pathlib.Path(args.dot).write_text(analysis.to_dot())

    findings = analysis.findings()
    for finding in findings:
        print(finding)
    if findings:
        print(f"lockgraph: {len(findings)} finding(s)")
        return 1
    if not args.quiet:
        print(f"lockgraph: clean ({len(analysis.nodes)} locks, "
              f"{len(analysis.edges)} ordered pairs, "
              f"{len(analysis.justified_blocking)} justified blocking "
              "sites)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
