#!/usr/bin/env bash
# Builds and tests the repo under each correctness mode that the local
# toolchain supports:
#
#   1. plain      default build + ctest + repo lint + lock-order graph
#   2. lockdep    runtime lock-order detector on (GRIDDLES_LOCKDEP=1) + ctest
#   3. thread     ThreadSanitizer build + ctest
#   4. address    AddressSanitizer+UBSan build + ctest
#   5. clang-tsa  Clang -Wthread-safety -Werror build (skipped if no clang)
#
# Usage: tools/check.sh [mode...]
#        (default: plain lockdep thread address clang-tsa)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
MODES=("$@")
[ ${#MODES[@]} -eq 0 ] && MODES=(plain lockdep thread address clang-tsa)

run() { echo "+ $*" >&2; "$@"; }

for mode in "${MODES[@]}"; do
  echo "=== check: ${mode} ==="
  case "${mode}" in
    plain)
      run cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
      run cmake --build build -j"${JOBS}"
      run ctest --test-dir build --output-on-failure -j"${JOBS}"
      run python3 tools/lint.py
      run python3 tools/lockgraph.py
      ;;
    lockdep)
      # Reuses the plain build; the runtime lock-order detector aborts on
      # any inversion or self-deadlock, so a pass means zero violations.
      run cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
      run cmake --build build -j"${JOBS}"
      GRIDDLES_LOCKDEP=1 \
        run ctest --test-dir build --output-on-failure -j"${JOBS}"
      ;;
    thread)
      run cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGRIDDLES_SANITIZE=thread
      run cmake --build build-tsan -j"${JOBS}"
      TSAN_OPTIONS="halt_on_error=1" \
        run ctest --test-dir build-tsan --output-on-failure -j"${JOBS}"
      ;;
    address)
      run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGRIDDLES_SANITIZE=address
      run cmake --build build-asan -j"${JOBS}"
      ASAN_OPTIONS="detect_leaks=0" \
        UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        run ctest --test-dir build-asan --output-on-failure -j"${JOBS}"
      ;;
    clang-tsa)
      if ! command -v clang++ >/dev/null 2>&1; then
        echo "clang++ not found; skipping thread-safety analysis build" >&2
        continue
      fi
      run cmake -B build-clang -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
        -DGRIDDLES_WERROR=ON
      run cmake --build build-clang -j"${JOBS}"
      ;;
    *)
      echo "unknown mode: ${mode}" >&2
      exit 2
      ;;
  esac
done
echo "=== all checks passed ==="
