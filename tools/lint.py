#!/usr/bin/env python3
"""Repo lint: concurrency and error-handling invariants for GriddLeS.

Checks (all over src/, headers and sources):

  raw-primitive      No std::mutex / std::scoped_lock / std::unique_lock /
                     std::lock_guard / std::condition_variable outside
                     src/common/thread_annotations.h and the lockdep
                     implementation it hooks into. All locking goes
                     through the annotated Mutex/MutexLock/CondVar wrappers
                     so Clang's thread-safety analysis sees every acquire.
  mutex-annotation   Every `Mutex` data member must be referenced by at
                     least one GUARDED_BY(...) / REQUIRES(...) annotation
                     in the same file, or carry an inline justification:
                     `// lint: guards <what it protects>`.
  naked-lock         No direct .lock()/.unlock()/.try_lock() on a
                     mutex-named receiver and no std lock guard types
                     instantiated over griddles::Mutex (use MutexLock; the
                     wrapper's own lock()/unlock() are private to enforce
                     this at compile time under Clang, and MutexLock is
                     where the runtime lock-order hooks live).
  discarded-status   A call to a Status/Result-returning function used as a
                     bare statement silently drops the error. Handle it or
                     append `// lint:allow-discarded-status`. Ambiguous
                     names (close, call, ...) that collide with STL methods
                     are still flagged when the receiver's declared type
                     resolves to a class whose method is Status-only:
                     `Conn c; c.close();` fires, `std::ofstream f;
                     f.close();` does not.
  raw-atomic-counter No integral std::atomic<...> outside src/obs/: event
                     counts belong in the metrics registry (obs::Counter /
                     obs::Gauge) so exporters see them. Non-metric uses
                     (work distribution, id generation, flow control)
                     justify with `// lint: not-a-metric (<why>)` on
                     the same line or the line directly above.
  naked-span         No SpanRecord handling outside src/obs/: a span
                     begun without a guaranteed end leaves a half-open
                     timeline, so instrumentation sites use the RAII
                     obs::Span helper (src/obs/span.h). Deliberate raw
                     handling (re-recording drained spans, custom
                     exporters) justifies with
                     `// lint: span-raii (<why>)` on the same line or
                     the line directly above.
  format             clang-format --dry-run over src/ tests/ tools/ bench/
                     (skipped with a notice when clang-format is absent).

Run from the repo root:  python3 tools/lint.py
Self-check the checker:  python3 tools/lint.py --self-test
"""

from __future__ import annotations

import argparse
import pathlib
import re
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
# The locking vocabulary itself: the one wrapper header plus the runtime
# lock-order detector it calls into, which deliberately uses a raw
# std::mutex (guarding its state with griddles::Mutex would re-enter the
# detector's own hooks).
LOCK_IMPL_FILES = {
    pathlib.Path("src/common/thread_annotations.h"),
    pathlib.Path("src/common/lockdep.h"),
    pathlib.Path("src/common/lockdep.cc"),
}

RAW_PRIMITIVES = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|scoped_lock|"
    r"unique_lock|lock_guard|shared_lock|condition_variable(_any)?)\b"
)
MUTEX_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:griddles::)?Mutex\s+(\w+)\s*;"
)
GUARD_REF = re.compile(r"\b(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|"
                       r"REQUIRES_SHARED|ACQUIRE|RELEASE|EXCLUDES|"
                       r"ASSERT_CAPABILITY|RETURN_CAPABILITY)\s*\(\s*"
                       r"(?:\w+\s*\.\s*)?(\w+)")
GUARD_JUSTIFICATION = re.compile(r"//\s*lint:\s*guards\b")
NAKED_LOCK = re.compile(
    r"\b(\w*(?:mu_|mutex_?))(?:\.|->)(?:un|try_)?lock\s*\(")
# A std guard type instantiated over the wrapper would bypass MutexLock's
# lockdep hooks and explicit unlock()/lock() protocol (it also will not
# compile — Mutex::lock() is private — but the lint message is clearer
# than the compiler's).
WRAPPER_GUARD = re.compile(
    r"std::(?:lock_guard|scoped_lock|unique_lock|shared_lock)\s*<\s*"
    r"(?:griddles::)?Mutex\s*>")
INTEGRAL_ATOMIC = re.compile(
    r"std::atomic<\s*(?:std::)?"
    r"(?:u?int(?:8|16|32|64)?_t|size_t|ptrdiff_t|int|unsigned|long|short)"
)
NOT_A_METRIC = re.compile(r"//\s*lint:\s*not-a-metric\b")
UNADMITTED_CALL = re.compile(r"\bregister_method_unadmitted\s*\(")
NO_ADMISSION = re.compile(r"//\s*lint:\s*no-admission\b")
NAKED_SPAN = re.compile(r"\bSpanRecord\b")
SPAN_RAII_OK = re.compile(r"//\s*lint:\s*span-raii\b")
ALLOW_DISCARD = re.compile(r"//\s*lint:allow-discarded-status")
FN_DECL = re.compile(
    r"^\s*(?:virtual\s+)?(?:static\s+)?"
    r"((?:Status|Result<[^;={}]*>)|void|bool|int|[\w:]+(?:<[^;={}]*>)?[&*]*)"
    r"\s+(\w{4,})\s*\("
)
BARE_CALL = re.compile(r"^\s*(?:[\w.\->]+(?:\.|->))?(\w{4,})\s*\(")
RECV_CALL = re.compile(r"^\s*(\w+)(?:\.|->)(\w+)\s*\(")
CLASS_DECL = re.compile(r"^\s*(?:class|struct)\s+(\w+)")
VAR_DECL = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?(?:\w+::)*([A-Z]\w*)"
    r"(?:<[^;={}]*>)?\s*[&*]?\s+(\w+)\s*(?:[;({=]|$)"
)
# Names shared with STL/std::filesystem methods the declaration scan
# cannot see; never flagged.
STL_COLLISIONS = {
    "string", "size", "count", "empty", "data", "begin", "end", "find",
    "erase", "insert", "substr", "c_str", "front", "back", "value", "get",
    "reset", "swap", "clear", "wait", "stop", "close", "open", "load",
    "store", "exchange", "join", "native",
}


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string literal contents (crude but enough)."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//", 1)[0]


class Finding:
    def __init__(self, check: str, path: str, lineno: int, message: str):
        self.check = check
        self.path = path
        self.lineno = lineno
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.lineno}: [{self.check}] {self.message}"


def check_raw_primitives(path: str, lines: list[str]) -> list[Finding]:
    if pathlib.Path(path) in LOCK_IMPL_FILES:
        return []
    out = []
    for i, line in enumerate(lines, 1):
        code = strip_comments_and_strings(line)
        if RAW_PRIMITIVES.search(code) or "#include <mutex>" in code or \
                "#include <condition_variable>" in code:
            out.append(Finding(
                "raw-primitive", path, i,
                "use Mutex/MutexLock/CondVar from "
                "src/common/thread_annotations.h, not std primitives"))
    return out


def check_mutex_annotations(path: str, lines: list[str]) -> list[Finding]:
    if pathlib.Path(path) in LOCK_IMPL_FILES:
        return []
    guarded: set[str] = set()
    for line in lines:
        for m in GUARD_REF.finditer(line):
            guarded.add(m.group(1))
    out = []
    for i, line in enumerate(lines, 1):
        m = MUTEX_MEMBER.match(strip_comments_and_strings(line))
        if not m:
            continue
        name = m.group(1)
        if name in guarded or GUARD_JUSTIFICATION.search(line):
            continue
        out.append(Finding(
            "mutex-annotation", path, i,
            f"Mutex member '{name}' guards nothing: add GUARDED_BY({name}) "
            "to the protected members or justify with '// lint: guards ...'"))
    return out


def check_naked_locks(path: str, lines: list[str]) -> list[Finding]:
    if pathlib.Path(path) in LOCK_IMPL_FILES:
        return []
    out = []
    for i, line in enumerate(lines, 1):
        code = strip_comments_and_strings(line)
        if NAKED_LOCK.search(code):
            out.append(Finding(
                "naked-lock", path, i,
                "direct lock()/unlock()/try_lock() on a mutex: use "
                "MutexLock"))
        if WRAPPER_GUARD.search(code):
            out.append(Finding(
                "naked-lock", path, i,
                "std lock guard over griddles::Mutex bypasses the wrapper "
                "protocol: use MutexLock"))
    return out


def check_raw_atomic_counters(path: str, lines: list[str]) -> list[Finding]:
    if path.startswith("src/obs/"):
        return []
    out = []
    for i, line in enumerate(lines, 1):
        code = strip_comments_and_strings(line)
        if not INTEGRAL_ATOMIC.search(code):
            continue
        excused = NOT_A_METRIC.search(line) or (
            i >= 2 and NOT_A_METRIC.search(lines[i - 2]))
        if not excused:
            out.append(Finding(
                "raw-atomic-counter", path, i,
                "integral std::atomic outside src/obs/: use obs::Counter/"
                "obs::Gauge from the metrics registry, or justify with "
                "'// lint: not-a-metric (<why>)'"))
    return out


def check_admission_bypass(path: str, lines: list[str]) -> list[Finding]:
    """Flags handlers registered outside admission control.

    register_method_unadmitted() skips the overload shedding queue
    entirely (DESIGN.md §14); that is only sound for handlers that park
    server-side (Grid Buffer read-blocks-until-written) and must not hold
    capacity while stalled. Every call site has to say why, with
    '// lint: no-admission (<why>)' on the call line or within the three
    lines above it (the excuse prose usually wraps).
    """
    if path in ("src/net/rpc.h", "src/net/rpc.cc"):
        return []  # the declaring API itself
    out = []
    for i, line in enumerate(lines, 1):
        code = strip_comments_and_strings(line)
        if not UNADMITTED_CALL.search(code):
            continue
        excused = NO_ADMISSION.search(line) or any(
            i - back >= 1 and NO_ADMISSION.search(lines[i - 1 - back])
            for back in (1, 2, 3))
        if not excused:
            out.append(Finding(
                "admission-bypass", path, i,
                "register_method_unadmitted() bypasses admission control: "
                "use register_method() unless the handler blocks "
                "server-side, and justify with "
                "'// lint: no-admission (<why>)'"))
    return out


def check_naked_spans(path: str, lines: list[str]) -> list[Finding]:
    if path.startswith("src/obs/"):
        return []
    out = []
    for i, line in enumerate(lines, 1):
        code = strip_comments_and_strings(line)
        if not NAKED_SPAN.search(code):
            continue
        excused = SPAN_RAII_OK.search(line) or (
            i >= 2 and SPAN_RAII_OK.search(lines[i - 2]))
        if not excused:
            out.append(Finding(
                "naked-span", path, i,
                "raw SpanRecord outside src/obs/: use the RAII obs::Span "
                "helper so every span is closed and recorded, or justify "
                "with '// lint: span-raii (<why>)'"))
    return out


def collect_status_functions(files: dict[str, list[str]]) -> set[str]:
    """Names declared ONLY with Status/Result return types in src headers.

    A name that also exists with some other return type (e.g. a void
    close() beside a Status close(int)) is ambiguous for a textual check
    and is excluded, as are common STL method names.
    """
    status_names: set[str] = set()
    other_names: set[str] = set()
    for path, lines in files.items():
        if not path.endswith(".h"):
            continue
        for line in lines:
            m = FN_DECL.match(strip_comments_and_strings(line))
            if not m:
                continue
            ret, name = m.group(1), m.group(2)
            if ret.startswith(("Status", "Result<")):
                status_names.add(name)
            else:
                other_names.add(name)
    return status_names - other_names - STL_COLLISIONS - {"Status", "Result"}


def collect_class_status_methods(
        files: dict[str, list[str]]) -> dict[str, set[str]]:
    """Per class: method names declared ONLY with Status/Result returns.

    A brace-depth scan of src headers. Used to resolve receivers of
    ambiguous method names (`close`, `call`, ...) that the global
    name-based scan must exclude: `conn.close()` is checkable once we
    know `conn` is a `Conn` and `Conn::close` returns Status.
    """
    status: dict[str, set[str]] = {}
    other: dict[str, set[str]] = {}
    for path, lines in files.items():
        if not path.endswith(".h"):
            continue
        stack: list[tuple[str, int]] = []  # (class name, depth it opened at)
        depth = 0
        pending: str | None = None
        for raw in lines:
            code = strip_comments_and_strings(raw)
            m = CLASS_DECL.match(code)
            if m and ";" not in code.split("{", 1)[0]:
                pending = m.group(1)
            if stack and pending is None and depth == stack[-1][1] + 1:
                fm = FN_DECL.match(code)
                if fm:
                    klass = stack[-1][0]
                    bucket = status if fm.group(1).startswith(
                        ("Status", "Result<")) else other
                    bucket.setdefault(klass, set()).add(fm.group(2))
            for ch in code:
                if ch == "{":
                    depth += 1
                    if pending is not None:
                        stack.append((pending, depth - 1))
                        pending = None
                elif ch == "}":
                    depth -= 1
                    if stack and depth <= stack[-1][1]:
                        stack.pop()
            if pending is not None and ";" in code:
                pending = None  # forward declaration
    return {k: v - other.get(k, set()) for k, v in status.items()}


def check_discarded_status(path: str, lines: list[str],
                           status_fns: set[str],
                           class_status: dict[str, set[str]]) -> list[Finding]:
    # Receiver resolution: local/member declarations whose type is a
    # known class, so `recv.close();` can be checked by class.
    var_types: dict[str, str] = {}
    for line in lines:
        m = VAR_DECL.match(strip_comments_and_strings(line))
        if m and m.group(1) in class_status:
            var_types[m.group(2)] = m.group(1)

    out = []
    prev_code = ";"
    for i, line in enumerate(lines, 1):
        code = strip_comments_and_strings(line).rstrip()
        allowed = ALLOW_DISCARD.search(line)
        starts_statement = prev_code.endswith((";", "{", "}", ":"))
        if code.strip():
            prev_code = code.strip()
        if allowed or not starts_statement:
            continue
        # One whole statement on one line, value unconsumed.
        if not code.endswith(");") or code.count("(") != code.count(")"):
            continue
        if ("=" in code or "return" in code or "(void)" in code or
                "GL_RETURN_IF_ERROR" in code or "GL_ASSIGN_OR_RETURN" in code
                or "EXPECT" in code or "ASSERT" in code):
            continue
        m = BARE_CALL.match(code)
        if m and m.group(1) in status_fns:
            out.append(Finding(
                "discarded-status", path, i,
                f"result of Status/Result-returning '{m.group(1)}' is "
                "dropped; handle it or add '// lint:allow-discarded-status'"))
            continue
        rm = RECV_CALL.match(code)
        if rm:
            klass = var_types.get(rm.group(1))
            if klass and rm.group(2) in class_status.get(klass, set()):
                out.append(Finding(
                    "discarded-status", path, i,
                    f"result of Status/Result-returning '{klass}::"
                    f"{rm.group(2)}' is dropped; handle it or add "
                    "'// lint:allow-discarded-status'"))
    return out


def check_format(paths: list[pathlib.Path]) -> list[Finding]:
    binary = shutil.which("clang-format")
    if binary is None:
        print("lint: clang-format not found; skipping format check",
              file=sys.stderr)
        return []
    proc = subprocess.run(
        [binary, "--dry-run", "-Werror"] + [str(p) for p in paths],
        cwd=REPO, capture_output=True, text=True)
    if proc.returncode == 0:
        return []
    return [Finding("format", "<multiple>", 0,
                    "clang-format check failed:\n" + proc.stderr.strip())]


def source_files() -> list[pathlib.Path]:
    out = []
    for root in ("src", "tests", "tools", "bench", "examples"):
        base = REPO / root
        if base.is_dir():
            out.extend(sorted(base.rglob("*.h")))
            out.extend(sorted(base.rglob("*.cc")))
    return out


def run_checks(files: dict[str, list[str]],
               with_format: bool = True) -> list[Finding]:
    findings: list[Finding] = []
    src_files = {p: l for p, l in files.items() if p.startswith("src/")}
    status_fns = collect_status_functions(src_files)
    class_status = collect_class_status_methods(src_files)
    for path, lines in files.items():
        in_src = path.startswith("src/")
        if in_src:
            findings.extend(check_raw_primitives(path, lines))
            findings.extend(check_mutex_annotations(path, lines))
            findings.extend(check_naked_locks(path, lines))
            findings.extend(check_raw_atomic_counters(path, lines))
            findings.extend(check_admission_bypass(path, lines))
            findings.extend(check_naked_spans(path, lines))
            findings.extend(check_discarded_status(path, lines, status_fns,
                                                   class_status))
    if with_format:
        findings.extend(check_format(
            [REPO / p for p in files if (REPO / p).exists()]))
    return findings


def self_test() -> int:
    """Verifies every check fires on a deliberately-bad snippet."""
    bad = {
        "src/selftest/raw.cc": ["#include <mutex>",
                                "std::mutex mu;"],
        "src/selftest/unannotated.h": [
            "class C {",
            "  Mutex mu_;",          # guards nothing, no justification
            "  int value_;",
            "};"],
        "src/selftest/naked.cc": ["void f() { mu_.lock(); mu_.unlock(); }"],
        "src/selftest/trylock.cc": ["bool f() { return mu_.try_lock(); }"],
        "src/selftest/guard.cc": [
            "void f() { std::scoped_lock<griddles::Mutex> g(mu_); }"],
        "src/selftest/drop.h": ["Status do_thing(int x);"],
        "src/selftest/drop.cc": ["void g() {", "  do_thing(1);", "}"],
        "src/selftest/counter.cc": [
            "std::atomic<std::uint64_t> requests{0};"],
        "src/selftest/span.cc": [
            "void f() {",
            "  obs::SpanRecord record;",
            "  obs::SpanCollector::global().record(std::move(record));",
            "}"],
        # Ambiguous name (STL collision) caught via receiver resolution.
        "src/selftest/conn.h": [
            "class Conn {",
            " public:",
            "  Status close();",
            "};"],
        "src/selftest/conn.cc": [
            "void g() {",
            "  Conn conn;",
            "  conn.close();",
            "}"],
        "src/selftest/unadmitted.cc": [
            "void wire(RpcServer& rpc) {",
            "  rpc.register_method_unadmitted(kRead, handler);",
            "}"],
    }
    good = {
        "src/selftest/ok.h": [
            "class D {",
            "  mutable Mutex mu_;",
            "  int value_ GUARDED_BY(mu_) = 0;",
            "  Mutex io_mu_;  // lint: guards stderr",
            "};"],
        "src/selftest/ok.cc": [
            "void h() {",
            "  MutexLock lock(mu_);",
            "  lock.unlock();",
            "  GL_RETURN_IF_ERROR(do_thing(2));",
            "  do_thing(3);  // lint:allow-discarded-status",
            "}"],
        "src/selftest_atomic/ok.cc": [
            "std::atomic<bool> running{false};",
            "std::atomic<std::uint64_t> next_id{0};"
            "  // lint: not-a-metric (id generator)",
            "// lint: not-a-metric (sequence number)",
            "std::atomic<std::uint64_t> seq_{0};"],
        "src/obs/ok.cc": [
            "std::atomic<std::uint64_t> value_{0};",
            # src/obs/ owns the record type; raw handling is its job.
            "SpanRecord record;"],
        "src/selftest_span/ok.cc": [
            "void g() {",
            "  obs::Span span(obs::SpanKind::kStage, \"stage:x\");",
            "  // lint: span-raii (re-records drained spans in a test)",
            "  for (obs::SpanRecord& r : drained) collector.record(r);",
            "}"],
        # The lockdep implementation is the one sanctioned raw-primitive
        # user outside the annotations header.
        "src/common/lockdep.cc": [
            "#include <mutex>",
            "std::mutex mu;",
            "std::lock_guard<std::mutex> guard(mu);"],
        # Unresolvable or non-Status receivers stay exempt.
        "src/selftest_recv/ok.h": [
            "class Duplex {",
            " public:",
            "  Status close();",
            "  void close(int fd);",  # ambiguous within the class
            "};"],
        "src/selftest_recv/ok.cc": [
            "void k() {",
            "  std::ofstream out;",
            "  out.close();",
            "  Duplex d;",
            "  d.close();",
            "}"],
        "src/selftest_admit/ok.cc": [
            "void wire(RpcServer& rpc) {",
            "  rpc.register_method_unadmitted(  // lint: no-admission (blocks)",
            "      kRead, handler);",
            "  // lint: no-admission (read parks until the writer",
            "  // produces data; holding capacity would starve the",
            "  // writes that unblock it)",
            "  rpc.register_method_unadmitted(kStat, handler);",
            "}"],
    }
    findings = run_checks({**bad, **good}, with_format=False)
    fired = {f.check for f in findings}
    expected = {"raw-primitive", "mutex-annotation", "naked-lock",
                "discarded-status", "raw-atomic-counter", "naked-span",
                "admission-bypass"}
    ok = True
    for check in sorted(expected):
        if check not in fired:
            print(f"self-test: check '{check}' did not fire on bad input")
            ok = False
    if not any(f.path == "src/selftest/conn.cc" for f in findings):
        print("self-test: receiver-resolved discarded-status did not fire")
        ok = False
    for must_fire in ("src/selftest/trylock.cc", "src/selftest/guard.cc"):
        if not any(f.path == must_fire and f.check == "naked-lock"
                   for f in findings):
            print(f"self-test: naked-lock did not fire on {must_fire}")
            ok = False
    if any(f.path == "src/common/lockdep.cc" for f in findings):
        print("self-test: false positive on the lockdep allowlist")
        ok = False
    for f in findings:
        if "/ok." in f.path:
            print(f"self-test: false positive on good input: {f}")
            ok = False
    print("self-test " + ("passed" if ok else "FAILED"))
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checks fire on known-bad snippets")
    parser.add_argument("--no-format", action="store_true",
                        help="skip the clang-format check")
    args = parser.parse_args()
    if args.self_test:
        return self_test()

    files: dict[str, list[str]] = {}
    for path in source_files():
        rel = str(path.relative_to(REPO))
        files[rel] = path.read_text().splitlines()
    findings = run_checks(files, with_format=not args.no_format)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint: {len(findings)} finding(s)")
        return 1
    print(f"lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
